package fuzz

import (
	"fmt"
	"testing"

	"github.com/lumina-sim/lumina/internal/config"
	"github.com/lumina-sim/lumina/internal/orchestrator"
)

// coverageToyTarget builds a search space where score and behavioral
// coverage pull in opposite directions. Each dimension is "armed" when
// it reaches 6 of its 0..7 range; arming swaps in a second NIC profile
// or injects a fault event, lighting coverage pairs a quiet run never
// reaches — but every armed dimension costs score, so a purely
// score-driven search retreats to the all-quiet corner. Reaching the
// deep configurations (several dimensions armed at once) requires
// keeping low-scoring stepping stones alive, which is exactly what
// coverage guidance buys.
func coverageToyTarget() Target {
	armed := func(v int) bool { return v >= 6 }
	return Target{
		Name: "covtoy",
		Params: []Param{
			{Name: "profile", Min: 0, Max: 7},
			{Name: "drop", Min: 0, Max: 7},
			{Name: "ecn", Min: 0, Max: 7},
			{Name: "corrupt", Min: 0, Max: 7},
		},
		Build: func(g Genome) config.Test {
			c := config.Default()
			c.Traffic.MessageSize = 4096
			c.Traffic.NumMsgsPerQP = 2
			c.Switch.Mirror = false // keep evaluations fast
			if armed(g[0]) {
				c.Requester.NIC.Type = "cx6"
				c.Responder.NIC.Type = "cx6"
			}
			if armed(g[1]) {
				c.Traffic.Events = append(c.Traffic.Events, config.Event{QPN: 1, PSN: 2, Type: "drop", Iter: 1})
			}
			if armed(g[2]) {
				c.Traffic.Events = append(c.Traffic.Events, config.Event{QPN: 1, PSN: 3, Type: "ecn", Iter: 1})
			}
			if armed(g[3]) {
				c.Traffic.Events = append(c.Traffic.Events, config.Event{QPN: 1, PSN: 1, Type: "corrupt", Iter: 1})
			}
			return c
		},
		Score: func(g Genome, rep *orchestrator.Report) float64 {
			s := 10.0
			for _, v := range g {
				if armed(v) {
					s -= 3
				}
			}
			return s
		},
		Threshold: 100, // unreachable: pure exploration, no anomalies
	}
}

func frontierTotal(r *Result) int {
	n := 0
	for _, v := range r.Frontier {
		n += v
	}
	return n
}

// The checked-in demonstration that guidance pays: the same seed, the
// same iteration budget, the same target — the coverage-guided search
// must end with a strictly larger (site, transition) frontier than the
// blind search, because only guidance keeps the low-scoring
// frontier-advancing mutants in the pool for further mutation.
func TestCoverageGuidanceBeatsBlindSearch(t *testing.T) {
	run := func(guided bool) *Result {
		opts := Options{Seed: 11, PoolSize: 3, AcceptProb: 0, Generation: 8}
		if guided {
			opts.Coverage = true
		} else {
			opts.CoverageObserve = true // measure the blind baseline
		}
		f, err := New(coverageToyTarget(), opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(64)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	guided, blind := run(true), run(false)
	gt, bt := frontierTotal(guided), frontierTotal(blind)
	if gt <= bt {
		t.Fatalf("guided frontier %d (per profile %v) not strictly larger than blind %d (%v)",
			gt, guided.Frontier, bt, blind.Frontier)
	}
	if len(guided.CoverageSeeds) == 0 {
		t.Fatal("guided search reported no coverage seeds")
	}
	for _, fd := range guided.CoverageSeeds {
		if len(fd.NewPairs) == 0 {
			t.Fatalf("coverage seed %v has no new pairs", fd.Genome)
		}
		if fd.Score >= 100 {
			t.Fatalf("coverage seed %v crossed the anomaly threshold", fd.Genome)
		}
	}
	// The growth ledger must account for the frontier exactly: one entry
	// per merged generation, summing to the total across profiles.
	for _, res := range []*Result{guided, blind} {
		sum := 0
		for _, g := range res.FrontierGrowth {
			sum += g
		}
		if sum != frontierTotal(res) {
			t.Fatalf("frontier growth %v sums to %d, frontier total %d",
				res.FrontierGrowth, sum, frontierTotal(res))
		}
	}
}

// Guidance must not cost determinism: the frontier is advanced in
// submission order during the merge phase and consumes no search RNG,
// so the guided trajectory — admissions, seeds, growth ledger and all —
// is identical for every worker count.
func TestGuidedFuzzerIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) string {
		f, err := New(coverageToyTarget(), Options{Seed: 5, PoolSize: 3, AcceptProb: 0.1,
			Generation: 6, Workers: workers, Coverage: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(24)
		if err != nil {
			t.Fatal(err)
		}
		s := fmt.Sprintf("evals=%d best=%v@%v pool=%d frontier=%v growth=%v seeds=",
			res.Evaluations, res.BestScore, res.BestGenome, f.PoolSize(),
			res.Frontier, res.FrontierGrowth)
		for _, fd := range res.CoverageSeeds {
			s += fmt.Sprintf("%v+%d;", fd.Genome, len(fd.NewPairs))
		}
		return s
	}
	serial := run(1)
	for _, workers := range []int{8, 0} {
		if got := run(workers); got != serial {
			t.Errorf("workers=%d diverged:\nserial:   %s\nparallel: %s", workers, serial, got)
		}
	}
}
