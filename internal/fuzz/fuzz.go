// Package fuzz implements Lumina's genetic test-case generation module
// (§4, Algorithm 1). A target defines a bounded parameter space, a
// mapping from parameter vectors (genomes) to test configurations, and a
// multi-objective scoring function over run results; the fuzzer
// maintains a pool of configurations, mutates random members, keeps
// high-quality mutants (score at or above the pool median), keeps
// low-quality ones with a small probability to preserve diversity, and
// reports configurations whose score crosses the anomaly threshold.
package fuzz

import (
	"fmt"
	"sort"

	"github.com/lumina-sim/lumina/internal/config"
	"github.com/lumina-sim/lumina/internal/orchestrator"
	"github.com/lumina-sim/lumina/internal/sim"
)

// Param bounds one genome dimension.
type Param struct {
	Name string
	Min  int
	Max  int // inclusive
}

// Genome is one point in the target's parameter space.
type Genome []int

// Clone copies the genome.
func (g Genome) Clone() Genome { return append(Genome(nil), g...) }

func (g Genome) String() string {
	return fmt.Sprintf("%v", []int(g))
}

// Target describes what the fuzzer searches for: the space, the mapping
// to runnable configurations, and the anomaly scoring.
type Target struct {
	Name   string
	Params []Param
	// Build maps a genome to a runnable test configuration.
	Build func(Genome) config.Test
	// Score rates a completed run's "quality" at triggering anomalies —
	// the multi-objective Σ wᵢ·s(i) of Algorithm 1. Higher is more
	// anomalous.
	Score func(Genome, *orchestrator.Report) float64
	// Threshold above which a configuration counts as an anomaly.
	Threshold float64
}

// Options tune the search.
type Options struct {
	Seed       int64
	PoolSize   int     // initial pool of valid configurations
	AcceptProb float64 // probability of keeping a below-median mutant
	// Deadline bounds each evaluation's virtual time.
	Deadline sim.Duration
	// StopAtFirstAnomaly ends the search as soon as one anomaly is found
	// (Algorithm 1's "until anomaly found or timeout").
	StopAtFirstAnomaly bool
}

// DefaultOptions mirror the paper's usage: small pool, mild diversity.
func DefaultOptions() Options {
	return Options{Seed: 1, PoolSize: 6, AcceptProb: 0.2, Deadline: 120 * sim.Second}
}

// Finding is one anomalous configuration.
type Finding struct {
	Genome Genome
	Score  float64
	Report *orchestrator.Report
}

// Result summarizes a search.
type Result struct {
	Findings    []Finding // sorted by score, descending
	Evaluations int
	BestScore   float64
	BestGenome  Genome
}

type member struct {
	genome Genome
	score  float64
}

// Fuzzer runs Algorithm 1 over a target.
type Fuzzer struct {
	target Target
	opts   Options
	rng    *sim.RNG
	pool   []member
	res    Result
}

// New validates the target and prepares a fuzzer.
func New(target Target, opts Options) (*Fuzzer, error) {
	if len(target.Params) == 0 {
		return nil, fmt.Errorf("fuzz: target needs parameters")
	}
	for _, p := range target.Params {
		if p.Min > p.Max {
			return nil, fmt.Errorf("fuzz: param %q has empty range", p.Name)
		}
	}
	if target.Build == nil || target.Score == nil {
		return nil, fmt.Errorf("fuzz: target needs Build and Score")
	}
	if opts.PoolSize <= 0 {
		opts.PoolSize = 6
	}
	if opts.Deadline <= 0 {
		opts.Deadline = 120 * sim.Second
	}
	return &Fuzzer{target: target, opts: opts, rng: sim.NewRNG(opts.Seed)}, nil
}

// randomGenome samples uniformly within bounds.
func (f *Fuzzer) randomGenome() Genome {
	g := make(Genome, len(f.target.Params))
	for i, p := range f.target.Params {
		g[i] = p.Min + f.rng.Intn(p.Max-p.Min+1)
	}
	return g
}

// mutate perturbs one or two dimensions: a small step or a fresh sample.
func (f *Fuzzer) mutate(g Genome) Genome {
	out := g.Clone()
	n := 1 + f.rng.Intn(2)
	for k := 0; k < n; k++ {
		i := f.rng.Intn(len(out))
		p := f.target.Params[i]
		span := p.Max - p.Min
		switch f.rng.Intn(3) {
		case 0: // re-sample
			out[i] = p.Min + f.rng.Intn(span+1)
		case 1: // step up
			step := 1 + f.rng.Intn(max(1, span/4))
			out[i] = min(p.Max, out[i]+step)
		default: // step down
			step := 1 + f.rng.Intn(max(1, span/4))
			out[i] = max(p.Min, out[i]-step)
		}
	}
	return out
}

// evaluate runs one configuration and scores it.
func (f *Fuzzer) evaluate(g Genome) (float64, *orchestrator.Report, error) {
	cfg := f.target.Build(g)
	// Derive a per-evaluation seed from the genome so identical genomes
	// reproduce identical runs regardless of search order.
	seed := int64(1)
	for _, v := range g {
		seed = seed*1000003 + int64(v) + 7
	}
	cfg.Seed = seed
	rep, err := orchestrator.Run(cfg, orchestrator.Options{Deadline: f.opts.Deadline})
	if err != nil {
		return 0, nil, err
	}
	f.res.Evaluations++
	return f.target.Score(g, rep), rep, nil
}

func (f *Fuzzer) medianScore() float64 {
	scores := make([]float64, len(f.pool))
	for i, m := range f.pool {
		scores[i] = m.score
	}
	sort.Float64s(scores)
	n := len(scores)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return scores[n/2]
	}
	return (scores[n/2-1] + scores[n/2]) / 2
}

func (f *Fuzzer) record(g Genome, score float64, rep *orchestrator.Report) {
	if score > f.res.BestScore || f.res.BestGenome == nil {
		f.res.BestScore = score
		f.res.BestGenome = g.Clone()
	}
	if score >= f.target.Threshold {
		f.res.Findings = append(f.res.Findings, Finding{Genome: g.Clone(), Score: score, Report: rep})
	}
}

// Run executes up to iters mutation rounds (after seeding the pool) and
// returns the accumulated result. It follows Algorithm 1:
//
//	Γ ← initialize a pool of configs
//	repeat: γ ← random pick; γ* ← mutate(γ); run; Δ ← score
//	        if Δ ≥ median(Γ): Γ += γ*  else: Γ += γ* with probability p
//	until anomaly found or timeout
func (f *Fuzzer) Run(iters int) (*Result, error) {
	// Initialization.
	for len(f.pool) < f.opts.PoolSize {
		g := f.randomGenome()
		score, rep, err := f.evaluate(g)
		if err != nil {
			return nil, err
		}
		f.pool = append(f.pool, member{g, score})
		f.record(g, score, rep)
		if f.opts.StopAtFirstAnomaly && len(f.res.Findings) > 0 {
			f.finish()
			return &f.res, nil
		}
	}
	// Mutation loop.
	for it := 0; it < iters; it++ {
		parent := f.pool[f.rng.Intn(len(f.pool))]
		child := f.mutate(parent.genome)
		score, rep, err := f.evaluate(child)
		if err != nil {
			return nil, err
		}
		if score >= f.medianScore() || f.rng.Float64() < f.opts.AcceptProb {
			f.pool = append(f.pool, member{child, score})
		}
		f.record(child, score, rep)
		if f.opts.StopAtFirstAnomaly && len(f.res.Findings) > 0 {
			break
		}
	}
	f.finish()
	return &f.res, nil
}

func (f *Fuzzer) finish() {
	sort.SliceStable(f.res.Findings, func(i, j int) bool {
		return f.res.Findings[i].Score > f.res.Findings[j].Score
	})
}

// PoolSize reports the current pool population (diagnostics).
func (f *Fuzzer) PoolSize() int { return len(f.pool) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
