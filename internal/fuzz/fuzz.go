// Package fuzz implements Lumina's genetic test-case generation module
// (§4, Algorithm 1). A target defines a bounded parameter space, a
// mapping from parameter vectors (genomes) to test configurations, and a
// multi-objective scoring function over run results; the fuzzer
// maintains a pool of configurations, mutates random members, keeps
// high-quality mutants (score at or above the pool median), keeps
// low-quality ones with a small probability to preserve diversity, and
// reports configurations whose score crosses the anomaly threshold.
package fuzz

import (
	"context"
	"fmt"
	"sort"

	"github.com/lumina-sim/lumina/internal/config"
	"github.com/lumina-sim/lumina/internal/coverage"
	"github.com/lumina-sim/lumina/internal/engine"
	"github.com/lumina-sim/lumina/internal/orchestrator"
	"github.com/lumina-sim/lumina/internal/sim"
)

// Param bounds one genome dimension.
type Param struct {
	Name string
	Min  int
	Max  int // inclusive
}

// Genome is one point in the target's parameter space.
type Genome []int

// Clone copies the genome.
func (g Genome) Clone() Genome { return append(Genome(nil), g...) }

func (g Genome) String() string {
	return fmt.Sprintf("%v", []int(g))
}

// Target describes what the fuzzer searches for: the space, the mapping
// to runnable configurations, and the anomaly scoring.
type Target struct {
	Name   string
	Params []Param
	// Build maps a genome to a runnable test configuration.
	Build func(Genome) config.Test
	// Score rates a completed run's "quality" at triggering anomalies —
	// the multi-objective Σ wᵢ·s(i) of Algorithm 1. Higher is more
	// anomalous.
	Score func(Genome, *orchestrator.Report) float64
	// Threshold above which a configuration counts as an anomaly.
	Threshold float64
}

// Options tune the search.
type Options struct {
	Seed       int64
	PoolSize   int     // initial pool of valid configurations
	AcceptProb float64 // probability of keeping a below-median mutant
	// Deadline bounds each evaluation's virtual time.
	Deadline sim.Duration
	// StopAtFirstAnomaly ends the search as soon as one anomaly is found
	// (Algorithm 1's "until anomaly found or timeout").
	StopAtFirstAnomaly bool
	// Generation is the number of candidates drawn and evaluated per
	// round (default 8). It is an algorithm property: changing it
	// changes the search trajectory; changing Workers never does.
	Generation int
	// Workers is the engine worker-pool size used to evaluate a
	// generation (0 = one per CPU, 1 = serial). Because every
	// evaluation is an independent deterministic simulation and all
	// search randomness is drawn before a generation fans out, the
	// result is byte-identical for every worker count.
	Workers int
	// Coverage makes the search coverage-guided: every evaluation runs
	// with the behavioral coverage map attached, and a mutant that
	// lights up (site, transition) pairs new to its NIC profile's
	// frontier is admitted to the pool even when its score falls below
	// the median — novelty keeps a lineage alive the score alone would
	// discard. New-coverage mutants below the anomaly threshold are
	// reported as Result.CoverageSeeds. Frontier bookkeeping happens in
	// submission order during the merge phase and consumes no search
	// RNG, so guided searches stay byte-identical across worker counts.
	Coverage bool
	// CoverageObserve collects the same coverage and frontier
	// bookkeeping as Coverage but never lets novelty influence pool
	// admission — the blind-search baseline with measurement attached,
	// for quantifying what guidance buys.
	CoverageObserve bool
}

// DefaultOptions mirror the paper's usage: small pool, mild diversity.
func DefaultOptions() Options {
	return Options{Seed: 1, PoolSize: 6, AcceptProb: 0.2, Deadline: 120 * sim.Second, Generation: 8}
}

// Finding is one anomalous (or, in Result.CoverageSeeds, one
// frontier-advancing) configuration.
type Finding struct {
	Genome Genome
	Score  float64
	Report *orchestrator.Report
	// NewPairs are the (site, transition) coverage keys this evaluation
	// added to its NIC profile's frontier, in canonical registry order;
	// empty unless coverage collection was on.
	NewPairs []string
}

// Result summarizes a search.
type Result struct {
	Findings    []Finding // sorted by score, descending
	Evaluations int
	BestScore   float64
	BestGenome  Genome

	// CoverageSeeds are below-threshold configurations that advanced the
	// coverage frontier, in discovery order; nil unless coverage
	// collection was on.
	CoverageSeeds []Finding
	// Frontier maps NIC profile name → covered (site, transition) pairs
	// accumulated across the whole search; nil unless coverage
	// collection was on.
	Frontier map[string]int
	// FrontierGrowth records, per merged generation (pool
	// initialization first), how many pairs that generation added
	// across all profiles; nil unless coverage collection was on.
	FrontierGrowth []int
}

type member struct {
	genome Genome
	score  float64
}

// Fuzzer runs Algorithm 1 over a target.
type Fuzzer struct {
	target Target
	opts   Options
	rng    *sim.RNG
	pool   []member
	res    Result

	// frontier accumulates covered (site, transition) pairs per NIC
	// profile; nil unless coverage collection is on.
	frontier map[string]*coverage.Set
}

// collecting reports whether evaluations run with coverage attached.
func (f *Fuzzer) collecting() bool { return f.opts.Coverage || f.opts.CoverageObserve }

// New validates the target and prepares a fuzzer.
func New(target Target, opts Options) (*Fuzzer, error) {
	if len(target.Params) == 0 {
		return nil, fmt.Errorf("fuzz: target needs parameters")
	}
	for _, p := range target.Params {
		if p.Min > p.Max {
			return nil, fmt.Errorf("fuzz: param %q has empty range", p.Name)
		}
	}
	if target.Build == nil || target.Score == nil {
		return nil, fmt.Errorf("fuzz: target needs Build and Score")
	}
	if opts.PoolSize <= 0 {
		opts.PoolSize = 6
	}
	if opts.Deadline <= 0 {
		opts.Deadline = 120 * sim.Second
	}
	if opts.Generation <= 0 {
		opts.Generation = 8
	}
	if opts.Workers < 0 {
		opts.Workers = 0
	}
	f := &Fuzzer{target: target, opts: opts, rng: sim.NewRNG(opts.Seed)}
	if f.collecting() {
		f.frontier = map[string]*coverage.Set{}
		f.res.Frontier = map[string]int{}
	}
	return f, nil
}

// randomGenome samples uniformly within bounds.
func (f *Fuzzer) randomGenome() Genome {
	g := make(Genome, len(f.target.Params))
	for i, p := range f.target.Params {
		g[i] = p.Min + f.rng.Intn(p.Max-p.Min+1)
	}
	return g
}

// mutate perturbs one or two dimensions: a small step or a fresh sample.
func (f *Fuzzer) mutate(g Genome) Genome {
	out := g.Clone()
	n := 1 + f.rng.Intn(2)
	for k := 0; k < n; k++ {
		i := f.rng.Intn(len(out))
		p := f.target.Params[i]
		span := p.Max - p.Min
		switch f.rng.Intn(3) {
		case 0: // re-sample
			out[i] = p.Min + f.rng.Intn(span+1)
		case 1: // step up
			step := 1 + f.rng.Intn(max(1, span/4))
			out[i] = min(p.Max, out[i]+step)
		default: // step down
			step := 1 + f.rng.Intn(max(1, span/4))
			out[i] = max(p.Min, out[i]-step)
		}
	}
	return out
}

// evalSeed derives a per-evaluation seed from the genome so identical
// genomes reproduce identical runs regardless of search order.
func evalSeed(g Genome) int64 {
	seed := int64(1)
	for _, v := range g {
		seed = seed*1000003 + int64(v) + 7
	}
	return seed
}

// evaluateAll fans one generation of genomes out over the run engine
// and returns the per-genome results in submission order. Evaluations
// consume no search RNG — each run's seed is a pure function of its
// genome — so the pool trajectory is independent of how (or in what
// order) the generation actually executed.
func (f *Fuzzer) evaluateAll(gs []Genome) []engine.JobResult {
	jobs := make([]engine.Job, len(gs))
	for i, g := range gs {
		cfg := f.target.Build(g)
		cfg.Seed = evalSeed(g)
		jobs[i] = engine.Job{
			Label: fmt.Sprintf("%s %v", f.target.Name, g),
			Cfg:   cfg,
			Opts:  orchestrator.Options{Deadline: f.opts.Deadline, Coverage: f.collecting()},
		}
	}
	return engine.Run(context.Background(), jobs, engine.Options{Workers: f.opts.Workers})
}

func (f *Fuzzer) medianScore() float64 {
	scores := make([]float64, len(f.pool))
	for i, m := range f.pool {
		scores[i] = m.score
	}
	sort.Float64s(scores)
	n := len(scores)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return scores[n/2]
	}
	return (scores[n/2-1] + scores[n/2]) / 2
}

func (f *Fuzzer) record(g Genome, score float64, rep *orchestrator.Report, fresh []string) {
	if score > f.res.BestScore || f.res.BestGenome == nil {
		f.res.BestScore = score
		f.res.BestGenome = g.Clone()
	}
	if score >= f.target.Threshold {
		f.res.Findings = append(f.res.Findings, Finding{Genome: g.Clone(), Score: score, Report: rep, NewPairs: fresh})
	} else if len(fresh) > 0 {
		f.res.CoverageSeeds = append(f.res.CoverageSeeds, Finding{Genome: g.Clone(), Score: score, Report: rep, NewPairs: fresh})
	}
}

// advanceFrontier merges one evaluation's coverage into its NIC
// profile's frontier and returns the freshly covered pair keys in
// canonical registry order. The profile key is the requester NIC model:
// targets drive both endpoints with the model under test, and a pair
// that is new for one model may be long-covered for another.
func (f *Fuzzer) advanceFrontier(rep *orchestrator.Report) []string {
	if rep.Coverage == nil {
		return nil
	}
	prof := rep.Config.Requester.NIC.Type
	set := f.frontier[prof]
	if set == nil {
		set = coverage.NewSet()
		f.frontier[prof] = set
	}
	fresh := set.AddReport(rep.Coverage)
	f.res.Frontier[prof] = set.Size()
	return fresh
}

// candidate is one drawn-but-not-yet-merged genome. The accept coin is
// drawn unconditionally in the draw phase — before any evaluation — so
// the search RNG stream never depends on scores and a generation can
// fan out over the worker pool without perturbing the trajectory.
type candidate struct {
	genome Genome
	coin   float64
}

// mergeGeneration consumes one generation's results in submission
// order: score, pool admission against the current (growing) median,
// recording, and the early-stop check. init admits unconditionally
// (pool initialization). It reports whether the search should stop;
// results past the stopping point are discarded unseen and uncounted,
// exactly as a serial loop would never have evaluated them.
func (f *Fuzzer) mergeGeneration(cands []candidate, results []engine.JobResult, init bool) (stop bool, err error) {
	grew := 0
	if f.collecting() {
		// One growth entry per merged generation, even when the merge
		// stops early — the entry then counts only the consumed results.
		defer func() {
			if err == nil {
				f.res.FrontierGrowth = append(f.res.FrontierGrowth, grew)
			}
		}()
	}
	for i, c := range cands {
		r := &results[i]
		if r.Err != nil {
			return true, fmt.Errorf("fuzz %s: evaluating %v: %w", f.target.Name, c.genome, r.Err)
		}
		score := f.target.Score(c.genome, r.Report)
		f.res.Evaluations++
		fresh := f.advanceFrontier(r.Report)
		grew += len(fresh)
		// Coverage guidance: frontier-advancing mutants join the pool
		// regardless of score (observe mode measures but never admits).
		if init || score >= f.medianScore() || c.coin < f.opts.AcceptProb ||
			(f.opts.Coverage && len(fresh) > 0) {
			f.pool = append(f.pool, member{c.genome, score})
		}
		f.record(c.genome, score, r.Report, fresh)
		if f.opts.StopAtFirstAnomaly && len(f.res.Findings) > 0 {
			return true, nil
		}
	}
	return false, nil
}

// Run executes up to iters mutation evaluations (after seeding the
// pool) and returns the accumulated result. It follows Algorithm 1:
//
//	Γ ← initialize a pool of configs
//	repeat: γ ← random pick; γ* ← mutate(γ); run; Δ ← score
//	        if Δ ≥ median(Γ): Γ += γ*  else: Γ += γ* with probability p
//	until anomaly found or timeout
//
// generationally: each round draws up to Options.Generation candidates
// (parent picks, mutations, and accept coins — all of the round's
// randomness) against the pool as it stood at the round's start, fans
// the evaluations out over the run engine, and merges the results in
// draw order. Evaluations consume no search RNG, so the result is
// identical for every worker count.
func (f *Fuzzer) Run(iters int) (*Result, error) {
	// Initialization: one generation of uniform samples, admitted
	// unconditionally.
	var seeds []candidate
	for len(seeds)+len(f.pool) < f.opts.PoolSize {
		seeds = append(seeds, candidate{genome: f.randomGenome()})
	}
	gs := make([]Genome, len(seeds))
	for i, c := range seeds {
		gs[i] = c.genome
	}
	stop, err := f.mergeGeneration(seeds, f.evaluateAll(gs), true)
	if err != nil {
		return nil, err
	}
	// Mutation generations.
	for done := 0; done < iters && !stop; {
		n := min(f.opts.Generation, iters-done)
		cands := make([]candidate, n)
		gs := make([]Genome, n)
		for i := range cands {
			parent := f.pool[f.rng.Intn(len(f.pool))]
			cands[i] = candidate{genome: f.mutate(parent.genome), coin: f.rng.Float64()}
			gs[i] = cands[i].genome
		}
		stop, err = f.mergeGeneration(cands, f.evaluateAll(gs), false)
		if err != nil {
			return nil, err
		}
		done += n
	}
	f.finish()
	return &f.res, nil
}

func (f *Fuzzer) finish() {
	sort.SliceStable(f.res.Findings, func(i, j int) bool {
		return f.res.Findings[i].Score > f.res.Findings[j].Score
	})
}

// PoolSize reports the current pool population (diagnostics).
func (f *Fuzzer) PoolSize() int { return len(f.pool) }
