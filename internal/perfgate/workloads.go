package perfgate

import (
	"net/netip"
	"os"
	"path/filepath"

	"github.com/lumina-sim/lumina/internal/config"
	"github.com/lumina-sim/lumina/internal/coverage"
	"github.com/lumina-sim/lumina/internal/inband"
	"github.com/lumina-sim/lumina/internal/orchestrator"
	"github.com/lumina-sim/lumina/internal/packet"
	"github.com/lumina-sim/lumina/internal/resultcache"
	"github.com/lumina-sim/lumina/internal/sim"
)

// A workload returns (ops per measurement pass, the operation). Setup
// happens inside the constructor so its allocations land outside the
// measured window; the op must be deterministic and free of wall-clock
// or global-RNG reads, like everything else in the simulator.
type workloadFn func() (ops int, op func())

// workloads maps budget names to their measurable operations. Every
// entry in perf_budgets.json must have a workload here and vice versa
// (TestPerfBudgets cross-checks).
var workloads = map[string]workloadFn{
	"packet_append_wire": packetAppendWire,
	"packet_decode_into": packetDecodeInto,
	"packet_icrc":        packetICRC,
	"sim_events":         simEvents,
	"event_batch":        eventBatch,
	"int_stamp":          intStamp,
	"coverage_record":    coverageRecord,
	"end_to_end_run":     endToEndRun,
	"fabric_incast":      fabricIncast,
	"cache_lookup":       cacheLookup,
}

// samplePacket is a representative mid-message Write data packet: the
// single most common packet shape on the simulated wire.
func samplePacket() *packet.Packet {
	return &packet.Packet{
		Eth: packet.Ethernet{
			Dst: packet.MAC{2, 0, 0, 0, 0, 2}, Src: packet.MAC{2, 0, 0, 0, 0, 1},
			EtherType: packet.EtherTypeIPv4,
		},
		IP: packet.IPv4{
			TTL: 64, Protocol: packet.ProtoUDP, ECN: packet.ECNECT0,
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		},
		UDP:     packet.UDP{SrcPort: 49152, DstPort: packet.RoCEv2Port},
		BTH:     packet.BTH{Opcode: packet.OpWriteMiddle, DestQP: 7, PSN: 100},
		Payload: make([]byte, 1024),
	}
}

// packetAppendWire is the transmit-side encode path: serializing a
// packet (headers + iCRC) into a reused buffer. Budgeted at zero
// allocations — this is the operation every simulated packet pays.
func packetAppendWire() (int, func()) {
	p := samplePacket()
	buf := make([]byte, 0, p.WireLen())
	return 20000, func() { buf = p.AppendWire(buf[:0]) }
}

// packetDecodeInto is the receive-side parse path: decoding wire bytes
// into a reused packet struct, payload aliased not copied. Zero allocs.
func packetDecodeInto() (int, func()) {
	wire := samplePacket().Serialize()
	var pkt packet.Packet
	return 20000, func() {
		if err := packet.DecodeInto(wire, &pkt); err != nil {
			panic(err)
		}
	}
}

// packetICRC is the invariant-CRC computation every received packet
// pays before transport processing. Zero allocs.
func packetICRC() (int, func()) {
	wire := samplePacket().Serialize()
	body := wire[:len(wire)-4]
	return 20000, func() { _ = packet.ComputeICRC(body) }
}

// simEvents is the event-loop steady state: schedule one callback, fire
// it. With the indexed heap and the event freelist this recycles one
// event struct per op — zero allocations once warm.
func simEvents() (int, func()) {
	s := sim.New(1)
	fn := func() {}
	// Warm the freelist so the measured window sees steady state.
	for i := 0; i < 64; i++ {
		s.After(1, fn)
	}
	for s.Step() {
	}
	return 50000, func() {
		s.After(1, fn)
		s.Step()
	}
}

// eventBatch is the bursty event-loop case the batch drain optimizes:
// a run of events sharing one timestamp (an incast wave, a fan-out of
// link deliveries) popped as a whole before any callback executes —
// one heap sift per event instead of a pop/execute interleave. With
// the freelist and the reused batch buffer this is allocation-free
// once warm.
func eventBatch() (int, func()) {
	s := sim.New(1)
	fn := func() {}
	const burst = 64
	// Warm the freelist and the batch buffer to burst size.
	for i := 0; i < burst; i++ {
		s.After(1, fn)
	}
	s.Run()
	return 2000, func() {
		for i := 0; i < burst; i++ {
			s.After(1, fn)
		}
		s.Run()
	}
}

// intStamp is the in-band telemetry hot path: an origin hop tags and
// stamps a RoCE packet, a transit hop resolves the tag and restamps,
// and the compact stamp is decoded back — the per-packet cost of an
// INT-enabled run. Budgeted at zero allocations: the stamp log is
// truncated (capacity kept) each op, exactly how steady state reuses
// it.
func intStamp() (int, func()) {
	c := inband.NewCollector(nil)
	origin := c.RegisterHop("nic", true)
	transit := c.RegisterHop("sw", false)
	wire := samplePacket().Serialize()
	// One warm pass grows the stamp log to its steady-state capacity.
	c.StampWire(wire, origin, 0, 0, 0)
	c.StampWire(wire, transit, 100, 1500, 80)
	c.Reset()
	var t int64
	return 20000, func() {
		t += 1000
		c.StampWire(wire, origin, t, 0, sim.Duration(t/2))
		c.StampWire(wire, transit, t+100, 1500, sim.Duration(t/4))
		if _, ok := packet.DecodeINTStamp(wire); !ok {
			panic("perfgate: int_stamp decode failed")
		}
		c.Reset()
	}
}

// coverageRecord is the behavioral-coverage hot path: every
// instrumented FSM transition and match-action branch pays one Record
// call, and components without an attached map pay the nil-receiver
// no-op. Both sides are budgeted at zero allocations — the map is a
// fixed count vector sized by the compile-time registry.
func coverageRecord() (int, func()) {
	m := coverage.NewMap()
	var detached *coverage.Map
	return 50000, func() {
		m.Record(coverage.SiteQPState, 1)
		m.Record(coverage.SiteInjectLookup, 0)
		m.Record(coverage.SiteDCQCNRP, 4)
		detached.Record(coverage.SiteAck, 0)
	}
}

// endToEndRun is one complete orchestrated test: setup, traffic,
// injection, mirroring, capture, trace reconstruction, integrity check.
// Its budget is the whole-system regression tripwire; the companion
// ratio check pins it ≥30% below the pre-optimization baseline.
func endToEndRun() (int, func()) {
	cfg := config.Default()
	cfg.Traffic.NumMsgsPerQP = 5
	return 8, func() {
		rep, err := orchestrator.Run(cfg, orchestrator.DefaultOptions())
		if err != nil {
			panic(err)
		}
		if !rep.IntegrityOK {
			panic("perfgate: end_to_end_run integrity check failed: " + rep.IntegrityDetail)
		}
	}
}

// cacheLookup is the result-cache hit path: one verified Get of a real
// run's artifact set (entry.json parse, per-artifact read, size and
// digest check). This is what a warm corpus replay or a served
// resubmission pays *instead of* an end_to_end_run, so its budget keeps
// the hit path orders of magnitude below the simulation it replaces.
func cacheLookup() (int, func()) {
	cfg := config.Default()
	cfg.Traffic.NumMsgsPerQP = 5
	opts := orchestrator.DefaultOptions()
	opts.Lineage = true
	rep, err := orchestrator.Run(cfg, opts)
	if err != nil {
		panic(err)
	}
	arts, err := resultcache.Render(rep)
	if err != nil {
		panic(err)
	}
	// A fixed directory keeps repeated gate runs from accumulating temp
	// dirs; the previous run's copy is replaced wholesale.
	dir := filepath.Join(os.TempDir(), "lumina-perfgate-cache")
	os.RemoveAll(dir)
	c, err := resultcache.Open(dir, 0)
	if err != nil {
		panic(err)
	}
	key, err := resultcache.KeyFor(cfg, "", opts)
	if err != nil {
		panic(err)
	}
	if err := c.Put(key, arts); err != nil {
		panic(err)
	}
	return 200, func() {
		if _, ok := c.Get(key); !ok {
			panic("perfgate: cache_lookup missed a warm key")
		}
	}
}

// fabricIncast is one complete sharded fabric run: an 8-host 2-leaf /
// 1-spine incast (7 senders × 2 QPs into host 0) built as a per-node
// fabric of event-loop shards synchronized by conservative lookahead.
// Its budget bounds the whole sharding machinery — envelope pools,
// window barriers, outbox sweeps — per orchestrated run.
func fabricIncast() (int, func()) {
	cfg := config.Default()
	cfg.Fabric = &config.FabricTopo{Leaves: 2, HostsPerLeaf: 4, UplinkGbps: 400, Pattern: "incast"}
	cfg.Traffic.NumConnections = 2
	cfg.Traffic.NumMsgsPerQP = 2
	cfg.Traffic.Events = nil
	opts := orchestrator.DefaultOptions()
	opts.Shards = 4
	return 4, func() {
		rep, err := orchestrator.Run(cfg, opts)
		if err != nil {
			panic(err)
		}
		if !rep.IntegrityOK {
			panic("perfgate: fabric_incast integrity check failed: " + rep.IntegrityDetail)
		}
	}
}
