package perfgate

import (
	"sort"
	"testing"
)

// TestBudgetsParse validates the embedded budget file: it must parse,
// and its name set must exactly match the workload table — a budget
// without a workload can never be measured, and a workload without a
// budget is silently ungated.
func TestBudgetsParse(t *testing.T) {
	budgets, err := Budgets()
	if err != nil {
		t.Fatal(err)
	}
	var budgetNames []string
	for _, b := range budgets {
		budgetNames = append(budgetNames, b.Name)
		if b.AllocsPerOp < 0 || b.BytesPerOp < 0 {
			t.Errorf("budget %q has negative limits", b.Name)
		}
	}
	sort.Strings(budgetNames)
	workloadNames := WorkloadNames()
	if len(budgetNames) != len(workloadNames) {
		t.Fatalf("budget names %v != workload names %v", budgetNames, workloadNames)
	}
	for i := range budgetNames {
		if budgetNames[i] != workloadNames[i] {
			t.Fatalf("budget names %v != workload names %v", budgetNames, workloadNames)
		}
	}
}

// TestPerfBudgets is the deterministic perf gate: it measures every
// budgeted workload's allocs/op and bytes/op and fails on any budget
// exceeded by more than Slack. CI runs exactly this test in the
// perf-gate job.
func TestPerfBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("perf gate measures full workloads; skipped in -short")
	}
	results, violations, err := Gate()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("%-22s %8.1f allocs/op %12.1f bytes/op", r.Name, r.AllocsPerOp, r.BytesPerOp)
	}
	for _, v := range violations {
		t.Errorf("perf budget violated: %s", v)
	}
}

// TestZeroAllocWorkloads cross-checks the zero-budget entries with
// testing.AllocsPerRun, an independent harness from perfgate's own
// MemStats deltas: every workload whose budget is 0 allocs/op must
// measure 0 there too.
func TestZeroAllocWorkloads(t *testing.T) {
	budgets, err := Budgets()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range budgets {
		if b.AllocsPerOp != 0 {
			continue
		}
		wl := workloads[b.Name]
		_, op := wl()
		op() // warm
		if avg := testing.AllocsPerRun(100, op); avg != 0 {
			t.Errorf("%s: testing.AllocsPerRun reports %.2f allocs/op, budget is 0", b.Name, avg)
		}
	}
}

// TestCheckFlagsRegressions exercises the gate logic itself with
// synthetic measurements so a bug in Check can't silently wave
// regressions through.
func TestCheckFlagsRegressions(t *testing.T) {
	budgets := []Budget{
		{Name: "zero", AllocsPerOp: 0, BytesPerOp: 0},
		{Name: "roomy", AllocsPerOp: 100, BytesPerOp: 9000, BaselineBytesPerOp: 10000, MaxBaselineBytesRatio: 0.7},
		{Name: "skipped", AllocsPerOp: 1, BytesPerOp: 1},
	}
	results := []Result{
		{Name: "zero", AllocsPerOp: 1, BytesPerOp: 8},       // any alloc busts a zero budget
		{Name: "roomy", AllocsPerOp: 105, BytesPerOp: 8000}, // within budget+slack on both, busts baseline ratio
	}
	violations := Check(budgets, results)
	want := map[string]bool{
		"zero/allocs/op": true,
		"zero/bytes/op":  true,
		"roomy/bytes/op vs pre-optimization baseline": true,
		"skipped/missing measurement":                 true,
	}
	got := map[string]bool{}
	for _, v := range violations {
		got[v.Name+"/"+v.Metric] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("expected violation %s, not reported (got %v)", k, violations)
		}
	}
	if got["roomy/allocs/op"] {
		t.Errorf("105 allocs/op is within 10%% slack of 100, must not violate")
	}
	if len(got) != len(want) {
		t.Errorf("unexpected extra violations: got %v want %v", got, want)
	}
}
