// Package perfgate enforces deterministic performance budgets for the
// hot paths of the simulator.
//
// Wall-clock benchmarks are useless as CI gates: they measure the
// runner's CPU, not the code. Allocation counts and allocated bytes per
// operation, by contrast, are deterministic properties of the compiled
// program — the same on a laptop and a loaded CI VM — so they can be
// budgeted, checked in, and gated without flakiness (see DESIGN.md
// §3.10). The budgets live in perf_budgets.json next to this file and
// are embedded into the binary; TestPerfBudgets and `lumina-bench -gate`
// both measure the named workloads and fail when any measurement exceeds
// its budget by more than Slack (10%). Zero budgets gate hard: a path
// promised to be allocation-free fails on the first stray allocation.
package perfgate

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
)

//go:embed perf_budgets.json
var budgetsJSON []byte

// Slack is the tolerated fractional overshoot above a budget before the
// gate fails: measured ≤ budget × (1 + Slack). A zero budget tolerates
// nothing — 1.1 × 0 is still 0.
const Slack = 0.10

// Budget is one named workload's checked-in allocation budget.
type Budget struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// BaselineAllocsPerOp / BaselineBytesPerOp record the pre-optimization
	// measurements this budget was cut from. They are documentation plus
	// the denominator for MaxBaselineBytesRatio; the gate never compares
	// against them directly.
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op"`
	BaselineBytesPerOp  float64 `json:"baseline_bytes_per_op"`

	// AllocsPerOp / BytesPerOp are the budgets: measurements above
	// budget × (1 + Slack) fail the gate.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`

	// MaxBaselineBytesRatio, when positive, additionally requires
	// measured bytes/op ≤ ratio × BaselineBytesPerOp — the "stay at least
	// 30% below the pre-optimization baseline" acceptance criterion is a
	// ratio of 0.7.
	MaxBaselineBytesRatio float64 `json:"max_baseline_bytes_ratio,omitempty"`
}

type budgetFile struct {
	Budgets []Budget `json:"budgets"`
}

// Budgets returns the embedded budget table.
func Budgets() ([]Budget, error) {
	var f budgetFile
	if err := json.Unmarshal(budgetsJSON, &f); err != nil {
		return nil, fmt.Errorf("perfgate: parsing embedded perf_budgets.json: %w", err)
	}
	if len(f.Budgets) == 0 {
		return nil, fmt.Errorf("perfgate: embedded perf_budgets.json has no budgets")
	}
	seen := map[string]bool{}
	for _, b := range f.Budgets {
		if b.Name == "" {
			return nil, fmt.Errorf("perfgate: budget with empty name")
		}
		if seen[b.Name] {
			return nil, fmt.Errorf("perfgate: duplicate budget %q", b.Name)
		}
		seen[b.Name] = true
	}
	return f.Budgets, nil
}

// Result is one workload measurement.
type Result struct {
	Name        string  `json:"name"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Violation is one budget the measurements broke.
type Violation struct {
	Name     string  `json:"name"`
	Metric   string  `json:"metric"` // "allocs/op" or "bytes/op"
	Measured float64 `json:"measured"`
	Allowed  float64 `json:"allowed"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %.1f %s exceeds budget of %.1f", v.Name, v.Measured, v.Metric, v.Allowed)
}

// WorkloadNames lists the measurable workloads in sorted order.
func WorkloadNames() []string {
	names := make([]string, 0, len(workloads))
	for name := range workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// measurePasses is how many times each workload is sampled; the minimum
// across passes is reported, since noise (a GC finalizer, a lazily
// initialized table) only ever adds allocations.
const measurePasses = 3

// Measure runs the named workload and reports its per-operation
// allocation profile via runtime.MemStats deltas.
func Measure(name string) (Result, error) {
	wl, ok := workloads[name]
	if !ok {
		return Result{}, fmt.Errorf("perfgate: unknown workload %q (have %v)", name, WorkloadNames())
	}
	ops, op := wl()
	if ops <= 0 {
		return Result{}, fmt.Errorf("perfgate: workload %q declared %d ops", name, ops)
	}
	op() // warm caches, lazy tables, pools
	res := Result{Name: name}
	for pass := 0; pass < measurePasses; pass++ {
		allocs, bytes := measureOnce(ops, op)
		if pass == 0 || allocs < res.AllocsPerOp {
			res.AllocsPerOp = allocs
		}
		if pass == 0 || bytes < res.BytesPerOp {
			res.BytesPerOp = bytes
		}
	}
	return res, nil
}

func measureOnce(ops int, op func()) (allocsPerOp, bytesPerOp float64) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < ops; i++ {
		op()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(ops),
		float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)
}

// MeasureAll measures every budgeted workload.
func MeasureAll() ([]Result, error) {
	budgets, err := Budgets()
	if err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(budgets))
	for _, b := range budgets {
		r, err := Measure(b.Name)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return results, nil
}

// Check compares measurements against budgets and returns every
// violation (empty = gate passes). Budgets without a matching result are
// reported as violations too: a silently skipped workload must not pass.
func Check(budgets []Budget, results []Result) []Violation {
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	var out []Violation
	for _, b := range budgets {
		r, ok := byName[b.Name]
		if !ok {
			out = append(out, Violation{Name: b.Name, Metric: "missing measurement", Measured: -1, Allowed: 0})
			continue
		}
		if allowed := b.AllocsPerOp * (1 + Slack); r.AllocsPerOp > allowed {
			out = append(out, Violation{Name: b.Name, Metric: "allocs/op", Measured: r.AllocsPerOp, Allowed: allowed})
		}
		if allowed := b.BytesPerOp * (1 + Slack); r.BytesPerOp > allowed {
			out = append(out, Violation{Name: b.Name, Metric: "bytes/op", Measured: r.BytesPerOp, Allowed: allowed})
		}
		if b.MaxBaselineBytesRatio > 0 {
			if allowed := b.MaxBaselineBytesRatio * b.BaselineBytesPerOp; r.BytesPerOp > allowed {
				out = append(out, Violation{Name: b.Name, Metric: "bytes/op vs pre-optimization baseline", Measured: r.BytesPerOp, Allowed: allowed})
			}
		}
	}
	return out
}

// Gate measures every budgeted workload and checks the results: the
// one-call form TestPerfBudgets and `lumina-bench -gate` share.
func Gate() ([]Result, []Violation, error) {
	budgets, err := Budgets()
	if err != nil {
		return nil, nil, err
	}
	results, err := MeasureAll()
	if err != nil {
		return nil, nil, err
	}
	return results, Check(budgets, results), nil
}
