// Package version derives the build's identity from the information the
// Go toolchain embeds into every binary (debug.ReadBuildInfo): the main
// module's version and, when the build happened inside a VCS checkout
// with stamping enabled, the revision and dirty flag.
//
// Two render forms exist for two different jobs:
//
//   - String() is the human form every CLI prints for -version;
//   - Stamp() is the compact machine form embedded into result-cache
//     keys and summary.json. Verdicts are pure functions of
//     (scenario, profile, options, code version), so the stamp is the
//     fourth key dimension: a new revision invalidates cached results
//     without touching the first three.
//
// Both are computed once and constant for the life of the process, so
// every artifact one binary writes carries the same stamp — the
// byte-identity guarantees (same tree at any worker or shard count)
// hold within a build, which is the only place they are ever checked.
package version

import (
	"runtime/debug"
	"sync"
)

// Info is the decoded build identity.
type Info struct {
	// Module is the main module path.
	Module string `json:"module"`
	// Version is the main module version ("(devel)" for workspace
	// builds, a semver tag for released ones).
	Version string `json:"version"`
	// Revision is the VCS commit hash, when stamped ("" otherwise).
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
	// Go is the toolchain version that built the binary.
	Go string `json:"go"`
}

var (
	once sync.Once
	info Info
)

// Get returns the build identity, decoding it on first use.
func Get() Info {
	once.Do(func() {
		info = Info{Module: "github.com/lumina-sim/lumina", Version: "(devel)"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		info.Go = bi.GoVersion
		if bi.Main.Path != "" {
			info.Module = bi.Main.Path
		}
		if bi.Main.Version != "" {
			info.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.Revision = s.Value
			case "vcs.modified":
				info.Dirty = s.Value == "true"
			}
		}
	})
	return info
}

// Stamp is the compact build stamp embedded in cache keys and
// summary.json: the 12-hex-digit VCS revision ("rev12" or
// "rev12.dirty") when the build was stamped, otherwise the module
// version ("(devel)" for unstamped test binaries). The revision IS the
// code identity — the toolchain's pseudo-version is derived from it —
// so repeating it would only bloat the key. It contains no wall-clock
// component: two builds of the same commit produce the same stamp.
//
// Caveat: every dirty build of the same commit shares one ".dirty"
// stamp, so a developer iterating with uncommitted changes should point
// the cache at a scratch directory (or clear it) between behavioural
// edits — the same blind spot Go's own "+dirty" pseudo-versions have.
func Stamp() string {
	i := Get()
	if i.Revision == "" {
		return i.Version
	}
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if i.Dirty {
		return rev + ".dirty"
	}
	return rev
}

// String is the human -version form: module, version, revision and
// toolchain.
func String() string {
	i := Get()
	s := i.Module + " " + i.Version
	if i.Revision != "" && Stamp() != i.Version {
		s += " (" + Stamp() + ")"
	}
	if i.Go != "" {
		s += " " + i.Go
	}
	return s
}
