package version

import (
	"strings"
	"testing"
)

func TestStampIsStableAndKeySafe(t *testing.T) {
	a, b := Stamp(), Stamp()
	if a == "" {
		t.Fatal("empty build stamp")
	}
	if a != b {
		t.Fatalf("stamp not stable: %q vs %q", a, b)
	}
	// The stamp is a cache-key dimension joined with NUL separators and
	// rendered into JSON artifacts: keep it printable and single-token.
	if strings.ContainsAny(a, " \t\n\x00") {
		t.Fatalf("stamp %q contains separator bytes", a)
	}
}

func TestStringMentionsModule(t *testing.T) {
	if s := String(); !strings.Contains(s, Get().Module) {
		t.Fatalf("String() = %q lacks module path", s)
	}
}
