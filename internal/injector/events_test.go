package injector

import (
	"testing"

	"github.com/lumina-sim/lumina/internal/config"
	"github.com/lumina-sim/lumina/internal/packet"
	"github.com/lumina-sim/lumina/internal/sim"
)

func TestDelayActionPostponesForwarding(t *testing.T) {
	r := newRig(t, luminaCfg(), 1, nil)
	r.sw.AddConnection(conn(100))
	r.sw.InstallRule(Rule{
		SrcIP: ipA, DstIP: ipB, DstQPN: 0x200, PSN: 101, Iter: 1,
		Action: packet.EventDelay, Delay: 50 * sim.Microsecond,
	})
	var arrivals []struct {
		psn uint32
		at  sim.Time
	}
	r.fromB.SetReceiver(func(w []byte) {
		var pkt packet.Packet
		if packet.Decode(w, &pkt) == nil {
			arrivals = append(arrivals, struct {
				psn uint32
				at  sim.Time
			}{pkt.BTH.PSN, r.s.Now()})
		}
	})
	for psn := uint32(100); psn < 103; psn++ {
		r.sendA(dataPkt(psn, 0x200))
	}
	r.s.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// PSN 101 arrives last, ~50µs after the others.
	if arrivals[2].psn != 101 {
		t.Fatalf("last arrival PSN = %d, want the delayed 101 (order: %v)", arrivals[2].psn, arrivals)
	}
	gap := arrivals[2].at.Sub(arrivals[0].at)
	if gap < 50*sim.Microsecond || gap > 52*sim.Microsecond {
		t.Fatalf("delayed packet arrived %v after first, want ≈ 50µs", gap)
	}
	// The mirror records the delay event.
	found := false
	for _, d := range r.dumps[0] {
		if m, ok := packet.ExtractMirrorMeta(d); ok && m.Event == packet.EventDelay {
			found = true
		}
	}
	if !found {
		t.Fatal("no mirror packet carries the delay event")
	}
}

func TestReorderActionSwapsWithNextPacket(t *testing.T) {
	r := newRig(t, luminaCfg(), 1, nil)
	r.sw.AddConnection(conn(100))
	r.sw.InstallRule(Rule{
		SrcIP: ipA, DstIP: ipB, DstQPN: 0x200, PSN: 101, Iter: 1,
		Action: packet.EventReorder, ReorderOffset: 1,
	})
	var order []uint32
	r.fromB.SetReceiver(func(w []byte) {
		var pkt packet.Packet
		if packet.Decode(w, &pkt) == nil {
			order = append(order, pkt.BTH.PSN)
		}
	})
	for psn := uint32(100); psn < 104; psn++ {
		r.sendA(dataPkt(psn, 0x200))
	}
	r.s.Run()
	want := []uint32{100, 102, 101, 103}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestReorderOffsetTwo(t *testing.T) {
	r := newRig(t, luminaCfg(), 1, nil)
	r.sw.AddConnection(conn(100))
	r.sw.InstallRule(Rule{
		SrcIP: ipA, DstIP: ipB, DstQPN: 0x200, PSN: 100, Iter: 1,
		Action: packet.EventReorder, ReorderOffset: 2,
	})
	var order []uint32
	r.fromB.SetReceiver(func(w []byte) {
		var pkt packet.Packet
		if packet.Decode(w, &pkt) == nil {
			order = append(order, pkt.BTH.PSN)
		}
	})
	for psn := uint32(100); psn < 104; psn++ {
		r.sendA(dataPkt(psn, 0x200))
	}
	r.s.Run()
	want := []uint32{101, 102, 100, 103}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestReorderOnLastPacketReleasesByTimeout(t *testing.T) {
	// A reorder on the final packet has nothing to overtake it; the
	// bounded hold must still deliver it.
	r := newRig(t, luminaCfg(), 1, nil)
	r.sw.AddConnection(conn(100))
	r.sw.InstallRule(Rule{
		SrcIP: ipA, DstIP: ipB, DstQPN: 0x200, PSN: 100, Iter: 1,
		Action: packet.EventReorder, ReorderOffset: 1,
	})
	var at sim.Time
	got := 0
	r.fromB.SetReceiver(func(w []byte) { got++; at = r.s.Now() })
	r.sendA(dataPkt(100, 0x200))
	r.s.Run()
	if got != 1 {
		t.Fatalf("packet lost: got %d", got)
	}
	if at < sim.Time(reorderMaxHold) {
		t.Fatalf("released at %v, want after the %v hold bound", at, reorderMaxHold)
	}
}

func TestTranslateIntentsCarriesDelayAndOffset(t *testing.T) {
	conns := []ConnMeta{{ReqIP: ipA, ReqQPN: 1, ReqIPSN: 100, RespIP: ipB, RespQPN: 2}}
	rules, err := TranslateIntents([]config.Event{
		{QPN: 1, PSN: 2, Iter: 1, Type: "delay", DelayUs: 75},
		{QPN: 1, PSN: 3, Iter: 1, Type: "reorder", Offset: 3},
	}, "write", conns, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Action != packet.EventDelay || rules[0].Delay != 75*sim.Microsecond {
		t.Fatalf("delay rule = %+v", rules[0])
	}
	if rules[1].Action != packet.EventReorder || rules[1].ReorderOffset != 3 {
		t.Fatalf("reorder rule = %+v", rules[1])
	}
}
