// Package injector implements Lumina's event injector: the programmable
// switch data plane of Figure 6. Frames arriving on host-facing ports
// pass through the RoCE classifier, the ITER tracker, the event-injection
// match-action table, and L2 forwarding; every RoCE packet is also
// mirrored at ingress — before any drop takes effect, exactly as on the
// Tofino where mirroring precedes the MMU — with the mirror sequence
// number, event type, and ingress timestamp embedded in rewritten header
// fields, then sprayed over the traffic-dumper pool by weighted
// round-robin with optional RSS-defeating UDP port randomization (§3.3,
// §3.4).
package injector

import (
	"fmt"
	"net/netip"

	"github.com/lumina-sim/lumina/internal/config"
	"github.com/lumina-sim/lumina/internal/coverage"
	"github.com/lumina-sim/lumina/internal/inband"
	"github.com/lumina-sim/lumina/internal/packet"
	"github.com/lumina-sim/lumina/internal/sim"
	"github.com/lumina-sim/lumina/internal/telemetry"
)

// Rule is one entry of the event-injection match-action table — the
// low-level form of Figure 2's example: exact match on (source IP,
// destination IP, destination QPN, PSN, ITER), action an EventType.
type Rule struct {
	SrcIP  netip.Addr
	DstIP  netip.Addr
	DstQPN uint32
	PSN    uint32
	Iter   uint32
	Action packet.EventType

	// Delay is the added forwarding latency for EventDelay actions.
	Delay sim.Duration
	// ReorderOffset is how many later same-connection data packets an
	// EventReorder action lets overtake the matched packet.
	ReorderOffset int

	// Hits counts matches (rule diagnostics in the result bundle).
	Hits int
}

func (r Rule) key() ruleKey {
	return ruleKey{r.SrcIP, r.DstIP, r.DstQPN, r.PSN, r.Iter}
}

type ruleKey struct {
	srcIP  netip.Addr
	dstIP  netip.Addr
	dstQPN uint32
	psn    uint32
	iter   uint32
}

// ConnMeta is the runtime traffic metadata a traffic generator shares
// with the injector before traffic starts (§3.3): both endpoints'
// IP/QPN/IPSN. It seeds the ITER tracker so Figure 3's Last_PSN starts
// at IPSN-1 in both directions. Read responses travel responder →
// requester but consume requester-side PSNs, so both directions seed
// from the requester's IPSN.
type ConnMeta struct {
	ReqIP    netip.Addr
	ReqQPN   uint32
	ReqIPSN  uint32
	RespIP   netip.Addr
	RespQPN  uint32
	RespIPSN uint32
}

type connKey struct {
	srcIP  netip.Addr
	dstIP  netip.Addr
	dstQPN uint32
}

// connState is the per-direction ITER tracker (Figure 3).
type connState struct {
	lastPSN uint32
	iter    uint32
}

// PortCounters are per-port packet counters dumped for integrity checks
// (§3.5, Table 1).
type PortCounters struct {
	RxFrames uint64 `json:"rx_frames"`
	RxRoCE   uint64 `json:"rx_roce"`
	TxFrames uint64 `json:"tx_frames"`
	TxRoCE   uint64 `json:"tx_roce"`
	Mirrored uint64 `json:"mirrored"`
	Injected uint64 `json:"injected"`
	Dropped  uint64 `json:"dropped"` // by drop actions
}

// Switch is the event injector instance.
type Switch struct {
	Sim *sim.Simulator
	Cfg config.Switch

	hostPorts   []*sim.Port
	hostMACs    []packet.MAC
	macTable    map[packet.MAC]int
	defaultPort int // unknown-unicast egress (-1 = drop); see SetDefaultPort
	dumperPorts []*sim.Port
	wrrWeights  []int
	wrrCurrent  []int

	rules map[ruleKey]*Rule
	conns map[connKey]*connState

	// reorder buffers: packets held by EventReorder, waiting for later
	// same-connection data packets to overtake them.
	held map[connKey][]*heldPkt

	mirrorSeq uint64
	rng       *sim.RNG

	// mirrorPool recycles mirror-copy buffers: a mirror frame is dead as
	// soon as the dumper's receive handler returns (the dumper trims into
	// its own storage), so the pool bounds steady-state mirror allocation
	// to the in-flight window.
	mirrorPool [][]byte

	perPort []PortCounters
	total   PortCounters

	// intCol/intHop make the match-action pipeline an INT stamping hop:
	// every mirrored RoCE packet's transit ID is bound to the mirror
	// sequence number — the join key between INT stamps and lineage
	// chains — and the forwarded original is restamped with the
	// pipeline's hop ID (see inband.Collector.Pipeline).
	intCol *inband.Collector
	intHop uint8

	// ByIngressMirror reproduces the initial two-host dumper design
	// (§3.4): each ingress port's mirrors go to one fixed dumper instead
	// of the weighted round-robin spray.
	ByIngressMirror bool
	// NoRSSRewrite disables the UDP destination-port randomization,
	// leaving the dumpers' RSS flow-affine (the ablation of §3.4's
	// load-balancing design).
	NoRSSRewrite bool
}

// New creates a switch with the given data-plane configuration.
func New(s *sim.Simulator, cfg config.Switch) *Switch {
	if cfg.PipelineLatencyNs <= 0 {
		cfg.PipelineLatencyNs = 400
	}
	return &Switch{
		Sim:         s,
		Cfg:         cfg,
		macTable:    map[packet.MAC]int{},
		defaultPort: -1,
		rules:       map[ruleKey]*Rule{},
		conns:       map[connKey]*connState{},
		held:        map[connKey][]*heldPkt{},
		rng:         s.RNG().Fork(),
	}
}

// heldPkt is a packet parked by an EventReorder action.
type heldPkt struct {
	wire      []byte
	dst       packet.MAC
	remaining int // same-connection data packets that must overtake first
	released  bool
}

// reorderMaxHold bounds how long a reordered packet may wait for
// overtaking traffic before it is forcibly released — without it, a
// reorder on the final packet of a stream would hold it forever.
const reorderMaxHold = 100 * sim.Microsecond

// AttachHost binds a host-facing port. The MAC populates the L2
// forwarding table.
func (sw *Switch) AttachHost(port *sim.Port, mac packet.MAC) int {
	idx := len(sw.hostPorts)
	sw.hostPorts = append(sw.hostPorts, port)
	sw.hostMACs = append(sw.hostMACs, mac)
	sw.macTable[mac] = idx
	sw.perPort = append(sw.perPort, PortCounters{})
	port.SetReceiver(func(wire []byte) { sw.ingress(idx, wire) })
	return idx
}

// AttachTrunk binds a fabric-facing trunk port (a leaf uplink, or a
// spine port toward one leaf) that fronts many MACs: every address in
// macs forwards out of this port. The trunk shares the host-port
// numbering and counters — it is a host port whose "host" is a subtree
// of the fabric. Returns the port index.
func (sw *Switch) AttachTrunk(port *sim.Port, macs []packet.MAC) int {
	idx := len(sw.hostPorts)
	sw.hostPorts = append(sw.hostPorts, port)
	sw.hostMACs = append(sw.hostMACs, packet.MAC{})
	for _, mac := range macs {
		sw.macTable[mac] = idx
	}
	sw.perPort = append(sw.perPort, PortCounters{})
	port.SetReceiver(func(wire []byte) { sw.ingress(idx, wire) })
	return idx
}

// SetDefaultPort routes unknown-unicast frames out of the host port at
// idx instead of dropping them — the leaf switch's default route up to
// the spine. Pass -1 to restore dropping.
func (sw *Switch) SetDefaultPort(idx int) { sw.defaultPort = idx }

// AttachDumper binds a mirror port with a WRR weight (≥1).
func (sw *Switch) AttachDumper(port *sim.Port, weight int) {
	if weight <= 0 {
		weight = 1
	}
	sw.dumperPorts = append(sw.dumperPorts, port)
	sw.wrrWeights = append(sw.wrrWeights, weight)
	sw.wrrCurrent = append(sw.wrrCurrent, 0)
}

// EnableINT registers the match-action pipeline as an INT hop on the
// collector. Must be called before traffic starts.
func (sw *Switch) EnableINT(c *inband.Collector) {
	sw.intCol = c
	sw.intHop = c.RegisterHop("sw-pipeline", false)
}

// AddConnection seeds the ITER tracker from exchanged traffic metadata.
func (sw *Switch) AddConnection(m ConnMeta) {
	seed := func(src, dst netip.Addr, dstQPN, ipsn uint32) {
		sw.conns[connKey{src, dst, dstQPN}] = &connState{
			lastPSN: (ipsn - 1) & packet.PSNMask,
			iter:    1,
		}
	}
	// Requester → responder data (Send/Write/Read requests): requester
	// PSN space. Responder → requester data (Read responses): also
	// requester PSN space (responses reuse the request's reserved PSNs).
	seed(m.ReqIP, m.RespIP, m.RespQPN, m.ReqIPSN)
	seed(m.RespIP, m.ReqIP, m.ReqQPN, m.ReqIPSN)
}

// InstallRule adds one match-action entry. Installing a duplicate
// (srcIP,dstIP,dstQPN,psn,iter) key replaces the action.
func (sw *Switch) InstallRule(r Rule) {
	rr := r
	sw.rules[r.key()] = &rr
}

// Rules returns the installed rules (diagnostics).
func (sw *Switch) Rules() []*Rule {
	out := make([]*Rule, 0, len(sw.rules))
	for _, r := range sw.rules {
		out = append(out, r)
	}
	return out
}

// Totals returns the aggregate counters.
func (sw *Switch) Totals() PortCounters { return sw.total }

// PerPort returns a copy of the per-host-port counters.
func (sw *Switch) PerPort() []PortCounters {
	return append([]PortCounters(nil), sw.perPort...)
}

// MirrorCount returns the number of packets mirrored so far — integrity
// check condition 2 (§3.5).
func (sw *Switch) MirrorCount() uint64 { return sw.mirrorSeq }

// ingress is the switch pipeline entry point (Figure 6).
func (sw *Switch) ingress(portIdx int, wire []byte) {
	pc := &sw.perPort[portIdx]
	pc.RxFrames++
	sw.total.RxFrames++

	var pkt packet.Packet
	isRoCE := packet.Decode(wire, &pkt) == nil && pkt.IsRoCE()

	if sw.Cfg.L2Only || !isRoCE {
		// Plain L2 forwarding (baseline mode, and non-RoCE traffic in
		// Lumina mode skips the RoCE pipeline stages).
		sw.forward(wire, pkt.Eth.Dst, isRoCE)
		return
	}

	pc.RxRoCE++
	sw.total.RxRoCE++

	// ITER tracking (Figure 3): data packets only — events target data
	// packets, and ACK/CNP PSNs live in unrelated sequence spaces.
	ev := packet.EventNone
	var rule *Rule
	isData := pkt.BTH.Opcode.IsData()
	if isData {
		iter := sw.trackITER(&pkt)
		if sw.Cfg.Inject {
			if rule = sw.lookupRule(&pkt, iter); rule != nil {
				sw.Sim.Coverage().Record(coverage.SiteInjectLookup, coverage.LookupHit)
				ev = rule.Action
				if h := sw.Sim.Hub(); h.Active() {
					// lineage = the mirror sequence number the imminent
					// ingress mirror stamps on this packet (mirrorSeq is
					// incremented just before embedding), i.e. the ID the
					// lineage package keys causal chains on.
					h.EmitArgs(telemetry.KindInjectHit,
						fmt.Sprintf("switch/port-%d", portIdx), ev.String(),
						telemetry.I("psn", int64(pkt.BTH.PSN)),
						telemetry.I("qpn", int64(pkt.BTH.DestQP)),
						telemetry.I("iter", int64(iter)),
						telemetry.I("lineage", int64(sw.mirrorSeq+1)))
					h.Count("inject.hits", 1)
				}
			} else {
				sw.Sim.Coverage().Record(coverage.SiteInjectLookup, coverage.LookupMiss)
			}
		}
	}

	// Apply the action to the forwarded original.
	out := wire
	switch ev {
	case packet.EventECN:
		sw.Sim.Coverage().Record(coverage.SiteInjectAction, coverage.ActionECN)
		out = append([]byte(nil), wire...)
		packet.SetECNCE(out)
	case packet.EventCorrupt:
		sw.Sim.Coverage().Record(coverage.SiteInjectAction, coverage.ActionCorrupt)
		out = append([]byte(nil), wire...)
		packet.CorruptPayload(out)
	case packet.EventSetMigReq:
		sw.Sim.Coverage().Record(coverage.SiteInjectAction, coverage.ActionMigReq)
		out = sw.rewriteMigReq(&pkt)
	}
	if ev != packet.EventNone {
		pc.Injected++
		sw.total.Injected++
	}

	// Ingress mirror: duplicates carry the post-injection bytes plus the
	// embedded metadata, and leave before the drop takes effect.
	if sw.Cfg.Mirror && len(sw.dumperPorts) > 0 {
		sw.mirror(out, ev, portIdx)
	}

	key := connKey{pkt.IP.Src, pkt.IP.Dst, pkt.BTH.DestQP}
	switch ev {
	case packet.EventDrop:
		sw.Sim.Coverage().Record(coverage.SiteInjectAction, coverage.ActionDrop)
		pc.Dropped++
		sw.total.Dropped++
		sw.Sim.Hub().Count("inject.drops", 1)
		return
	case packet.EventDelay:
		// Quantitative delay (§7 future work): forward after the rule's
		// extra latency on top of the pipeline.
		sw.Sim.Coverage().Record(coverage.SiteInjectAction, coverage.ActionDelay)
		d := sw.dataPlaneLatency(true) + rule.Delay
		dst := pkt.Eth.Dst
		sw.Sim.After(d, func() { sw.forwardNow(out, dst, true) })
		return
	case packet.EventReorder:
		// Packet reordering (§7 future work): park the packet until
		// ReorderOffset later data packets of its connection overtake it
		// (bounded by reorderMaxHold in case the stream ends).
		sw.Sim.Coverage().Record(coverage.SiteInjectAction, coverage.ActionReorderHold)
		off := rule.ReorderOffset
		if off <= 0 {
			off = 1
		}
		h := &heldPkt{wire: out, dst: pkt.Eth.Dst, remaining: off}
		sw.held[key] = append(sw.held[key], h)
		sw.Sim.After(reorderMaxHold, func() { sw.release(key, h) })
		return
	}
	sw.forward(out, pkt.Eth.Dst, true)

	// Data packets overtake any parked (reordered) predecessors.
	if isData {
		sw.overtake(key)
	}
}

// overtake credits one overtaking packet to every held packet of the
// connection and releases those whose quota is spent.
func (sw *Switch) overtake(key connKey) {
	holds := sw.held[key]
	if len(holds) == 0 {
		return
	}
	for _, h := range holds {
		h.remaining--
		sw.Sim.Coverage().Record(coverage.SiteInjectAction, coverage.ActionOvertake)
		if h.remaining <= 0 {
			sw.release(key, h)
		}
	}
}

// release forwards a held packet (idempotent) and compacts the hold list.
func (sw *Switch) release(key connKey, h *heldPkt) {
	if h.released {
		return
	}
	h.released = true
	sw.Sim.Coverage().Record(coverage.SiteInjectAction, coverage.ActionRelease)
	holds := sw.held[key][:0]
	for _, x := range sw.held[key] {
		if x != h {
			holds = append(holds, x)
		}
	}
	if len(holds) == 0 {
		delete(sw.held, key)
	} else {
		sw.held[key] = holds
	}
	sw.forward(h.wire, h.dst, true)
}

// trackITER implements Figure 3: if the packet's PSN is not larger than
// Last_PSN, a new (re)transmission round begins.
func (sw *Switch) trackITER(pkt *packet.Packet) uint32 {
	key := connKey{pkt.IP.Src, pkt.IP.Dst, pkt.BTH.DestQP}
	st, ok := sw.conns[key]
	if !ok {
		// Unknown connection (no metadata shared): adopt it with the
		// current packet starting round 1.
		sw.Sim.Coverage().Record(coverage.SiteInjectIter, coverage.IterAdopt)
		st = &connState{lastPSN: pkt.BTH.PSN, iter: 1}
		sw.conns[key] = st
		return st.iter
	}
	if !psnGreater(pkt.BTH.PSN, st.lastPSN) {
		sw.Sim.Coverage().Record(coverage.SiteInjectIter, coverage.IterNewRound)
		st.iter++
	} else {
		sw.Sim.Coverage().Record(coverage.SiteInjectIter, coverage.IterTracked)
	}
	st.lastPSN = pkt.BTH.PSN
	return st.iter
}

func (sw *Switch) lookupRule(pkt *packet.Packet, iter uint32) *Rule {
	k := ruleKey{pkt.IP.Src, pkt.IP.Dst, pkt.BTH.DestQP, pkt.BTH.PSN, iter}
	if r, ok := sw.rules[k]; ok {
		r.Hits++
		return r
	}
	return nil
}

// rewriteMigReq re-serializes the packet with MigReq forced to 1 — the
// action Lumina added to confirm the §6.2.3 interop root cause. Unlike
// ECN marking, MigReq is iCRC-covered, so the packet must be rebuilt.
// The flip is applied in place on the decoded packet and restored after
// serializing, avoiding a full clone.
func (sw *Switch) rewriteMigReq(pkt *packet.Packet) []byte {
	saved := pkt.BTH.MigReq
	pkt.BTH.MigReq = true
	out := pkt.AppendWire(nil)
	pkt.BTH.MigReq = saved
	return out
}

// dataPlaneLatency models the pipeline stages a packet traverses:
// PipelineLatencyNs is the full Lumina pipeline (parser, ITER tracking,
// event-injection match-action, L2 forwarding — the prototype's four
// Tofino stages); packets that skip the injection stages (plain L2 mode,
// injection disabled, or non-RoCE traffic) only pay the parse+forward
// fraction. This reproduces Figure 7's 4–7% MCT overhead of the full
// pipeline over Lumina-ne and plain L2 forwarding.
func (sw *Switch) dataPlaneLatency(roce bool) sim.Duration {
	full := sim.Duration(sw.Cfg.PipelineLatencyNs)
	base := full * 5 / 8
	if sw.Cfg.L2Only || !sw.Cfg.Inject || !roce {
		return base
	}
	return full
}

// forward performs L2 forwarding with the stage-dependent latency.
func (sw *Switch) forward(wire []byte, dst packet.MAC, isRoCE bool) {
	idx, ok := sw.macTable[dst]
	if !ok {
		if sw.defaultPort < 0 {
			return // unknown unicast: drop (no flooding in a 2-host testbed)
		}
		idx = sw.defaultPort // default route: the uplink trunk
	}
	port := sw.hostPorts[idx]
	out := wire
	sw.perPort[idx].TxFrames++
	sw.total.TxFrames++
	if isRoCE {
		sw.perPort[idx].TxRoCE++
		sw.total.TxRoCE++
	}
	sw.Sim.After(sw.dataPlaneLatency(isRoCE), func() {
		port.Send(out)
	})
}

// forwardNow is forward without the pipeline latency (the caller already
// accounted for it, e.g. delay events).
func (sw *Switch) forwardNow(wire []byte, dst packet.MAC, isRoCE bool) {
	idx, ok := sw.macTable[dst]
	if !ok {
		if sw.defaultPort < 0 {
			return
		}
		idx = sw.defaultPort
	}
	sw.perPort[idx].TxFrames++
	sw.total.TxFrames++
	if isRoCE {
		sw.perPort[idx].TxRoCE++
		sw.total.TxRoCE++
	}
	sw.hostPorts[idx].Send(wire)
}

// getMirrorBuf returns an n-byte buffer from the pool (or a fresh one).
func (sw *Switch) getMirrorBuf(n int) []byte {
	for k := len(sw.mirrorPool) - 1; k >= 0; k-- {
		buf := sw.mirrorPool[k]
		if cap(buf) >= n {
			sw.mirrorPool[k] = sw.mirrorPool[len(sw.mirrorPool)-1]
			sw.mirrorPool[len(sw.mirrorPool)-1] = nil
			sw.mirrorPool = sw.mirrorPool[:len(sw.mirrorPool)-1]
			return buf[:n]
		}
	}
	return make([]byte, n)
}

func (sw *Switch) putMirrorBuf(buf []byte) {
	sw.mirrorPool = append(sw.mirrorPool, buf)
}

// mirror emits the metadata-stamped duplicate toward the dumper pool.
func (sw *Switch) mirror(wire []byte, ev packet.EventType, ingress int) {
	dup := sw.getMirrorBuf(len(wire))
	copy(dup, wire)
	sw.mirrorSeq++
	if sw.intCol != nil {
		// INT pipeline hop on the forwarded original (the mirror copy is
		// already duplicated): stamp the ingress instant and bind transit
		// ID ↔ mirror sequence number, the lineage join key.
		sw.intCol.Pipeline(wire, sw.intHop, int64(sw.Sim.Now()), sw.mirrorSeq)
	}
	packet.EmbedMirrorMeta(dup, packet.MirrorMeta{
		Seq:       sw.mirrorSeq,
		Event:     ev,
		Timestamp: int64(sw.Sim.Now()),
	})
	// Defeat flow-affinity RSS at the dumpers: randomize the UDP
	// destination port (restored to 4791 by the dumper before writing to
	// disk).
	if !sw.NoRSSRewrite {
		sw.Sim.Coverage().Record(coverage.SiteInjectMirror, coverage.MirrorRSSRewrite)
		packet.RewriteUDPDstPort(dup, uint16(0xC000+sw.rng.Intn(0x3000)))
	}
	var port *sim.Port
	var pick int
	if sw.ByIngressMirror {
		sw.Sim.Coverage().Record(coverage.SiteInjectMirror, coverage.MirrorByIngress)
		pick = ingress % len(sw.dumperPorts)
	} else {
		sw.Sim.Coverage().Record(coverage.SiteInjectMirror, coverage.MirrorSpray)
		pick = sw.nextDumper()
	}
	port = sw.dumperPorts[pick]
	if h := sw.Sim.Hub(); h.Active() {
		h.EmitArgs(telemetry.KindWRRPick, "switch/mirror", "spray",
			telemetry.I("node", int64(pick)),
			telemetry.I("seq", int64(sw.mirrorSeq)))
		h.Count("switch.mirrored", 1)
	}
	sw.total.Mirrored++
	sw.Sim.After(sim.Duration(sw.Cfg.PipelineLatencyNs), func() {
		port.SendRecycle(dup, sw.putMirrorBuf)
	})
}

// nextDumper runs smooth weighted round-robin over the dumper ports.
func (sw *Switch) nextDumper() int {
	if len(sw.dumperPorts) == 1 {
		return 0
	}
	totalW := 0
	best := 0
	for i, w := range sw.wrrWeights {
		sw.wrrCurrent[i] += w
		totalW += w
		if sw.wrrCurrent[i] > sw.wrrCurrent[best] {
			best = i
		}
	}
	sw.wrrCurrent[best] -= totalW
	return best
}

// psnGreater reports a > b in the 24-bit circular space.
func psnGreater(a, b uint32) bool {
	return a != b && ((b-a)&packet.PSNMask) >= 1<<23
}

func (sw *Switch) String() string {
	return fmt.Sprintf("Switch(hosts=%d dumpers=%d rules=%d)", len(sw.hostPorts), len(sw.dumperPorts), len(sw.rules))
}
