package injector

import (
	"fmt"

	"github.com/lumina-sim/lumina/internal/config"
	"github.com/lumina-sim/lumina/internal/packet"
	"github.com/lumina-sim/lumina/internal/sim"
)

// TranslateIntents converts user-relative event intents (Listing 2) into
// exact match-action rules using the runtime connection metadata — the
// stateless control-plane translation of §3.3 and Figure 2:
//
//	relative QPN  → the (qpn-1)-th exchanged connection
//	relative PSN  → requester IPSN + (psn-1)
//	direction     → for Read, data packets flow responder → requester;
//	                for Send/Write, requester → responder
//	every         → expanded into one rule per matching packet index,
//	                bounded by the connection's total packet count
//
// totalPkts is the number of first-transmission data packets per
// connection (bounding 'every' expansion).
func TranslateIntents(events []config.Event, verb string, conns []ConnMeta, totalPkts int) ([]Rule, error) {
	var rules []Rule
	for i, ev := range events {
		if ev.QPN < 1 || ev.QPN > len(conns) {
			return nil, fmt.Errorf("injector: event %d: qpn %d out of range (have %d connections)", i, ev.QPN, len(conns))
		}
		action, ok := packet.ParseEventType(ev.Type)
		if !ok || action == packet.EventNone {
			return nil, fmt.Errorf("injector: event %d: unknown type %q", i, ev.Type)
		}
		m := conns[ev.QPN-1]
		iter := uint32(ev.Iter)
		if iter == 0 {
			iter = 1
		}

		indices := []int{ev.PSN}
		if ev.Every > 0 {
			indices = indices[:0]
			for p := ev.PSN; p <= totalPkts; p += ev.Every {
				indices = append(indices, p)
			}
		}
		for _, rel := range indices {
			if rel < 1 {
				return nil, fmt.Errorf("injector: event %d: psn %d must be >= 1", i, rel)
			}
			wirePSN := (m.ReqIPSN + uint32(rel-1)) & packet.PSNMask
			r := Rule{
				PSN: wirePSN, Iter: iter, Action: action,
				Delay:         sim.Duration(ev.DelayUs) * sim.Microsecond,
				ReorderOffset: ev.Offset,
			}
			if verb == "read" {
				// Data packets are read responses: responder → requester.
				r.SrcIP, r.DstIP, r.DstQPN = m.RespIP, m.ReqIP, m.ReqQPN
			} else {
				r.SrcIP, r.DstIP, r.DstQPN = m.ReqIP, m.RespIP, m.RespQPN
			}
			rules = append(rules, r)
		}
	}
	return rules, nil
}
