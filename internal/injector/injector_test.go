package injector

import (
	"net/netip"
	"testing"

	"github.com/lumina-sim/lumina/internal/config"
	"github.com/lumina-sim/lumina/internal/packet"
	"github.com/lumina-sim/lumina/internal/sim"
)

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 1}
	macB = packet.MAC{2, 0, 0, 0, 0, 2}
	ipA  = netip.MustParseAddr("10.0.0.1")
	ipB  = netip.MustParseAddr("10.0.0.2")
)

// rig is a switch with two stub hosts and a stub dumper pool.
type rig struct {
	s  *sim.Simulator
	sw *Switch
	// frames received by each endpoint
	atA, atB [][]byte
	dumps    [][][]byte // per dumper node
	// host-side ports (senders)
	fromA, fromB *sim.Port
}

func newRig(t *testing.T, cfg config.Switch, nDumpers int, weights []int) *rig {
	t.Helper()
	s := sim.New(1)
	r := &rig{s: s, sw: New(s, cfg)}
	hostA, swA := sim.Connect(s, "hostA", "sw-a", 100, 100)
	hostB, swB := sim.Connect(s, "hostB", "sw-b", 100, 100)
	hostA.SetReceiver(func(w []byte) { r.atA = append(r.atA, append([]byte(nil), w...)) })
	hostB.SetReceiver(func(w []byte) { r.atB = append(r.atB, append([]byte(nil), w...)) })
	r.fromA, r.fromB = hostA, hostB
	r.sw.AttachHost(swA, macA)
	r.sw.AttachHost(swB, macB)
	r.dumps = make([][][]byte, nDumpers)
	for i := 0; i < nDumpers; i++ {
		i := i
		dumpPort, swD := sim.Connect(s, "dump", "sw-d", 100, 100)
		dumpPort.SetReceiver(func(w []byte) { r.dumps[i] = append(r.dumps[i], append([]byte(nil), w...)) })
		w := 1
		if weights != nil {
			w = weights[i]
		}
		r.sw.AttachDumper(swD, w)
	}
	return r
}

func luminaCfg() config.Switch {
	return config.Switch{PipelineLatencyNs: 400, Mirror: true, Inject: true}
}

// dataPkt builds a serialized write packet A→B.
func dataPkt(psn uint32, qpn uint32) []byte {
	p := &packet.Packet{
		Eth: packet.Ethernet{Dst: macB, Src: macA, EtherType: packet.EtherTypeIPv4},
		IP: packet.IPv4{
			ECN: packet.ECNECT0, TTL: 64, Protocol: packet.ProtoUDP,
			Src: ipA, Dst: ipB,
		},
		UDP: packet.UDP{SrcPort: 50000, DstPort: packet.RoCEv2Port},
		BTH: packet.BTH{Opcode: packet.OpWriteMiddle, MigReq: false, DestQP: qpn, PSN: psn},
	}
	p.Payload = make([]byte, 256)
	return p.Serialize()
}

func (r *rig) sendA(wire []byte) { r.fromA.Send(wire) }

func conn(reqIPSN uint32) ConnMeta {
	return ConnMeta{
		ReqIP: ipA, ReqQPN: 0x100, ReqIPSN: reqIPSN,
		RespIP: ipB, RespQPN: 0x200, RespIPSN: 5000,
	}
}

func TestL2ForwardingByMAC(t *testing.T) {
	r := newRig(t, luminaCfg(), 1, nil)
	r.sendA(dataPkt(10, 0x200))
	r.s.Run()
	if len(r.atB) != 1 {
		t.Fatalf("B received %d frames, want 1", len(r.atB))
	}
	if len(r.atA) != 0 {
		t.Fatal("frame echoed to sender")
	}
}

func TestUnknownMACDropped(t *testing.T) {
	r := newRig(t, luminaCfg(), 1, nil)
	w := dataPkt(10, 0x200)
	w[0] = 0xEE // unknown destination MAC
	r.sendA(w)
	r.s.Run()
	if len(r.atB)+len(r.atA) != 0 {
		t.Fatal("frame to unknown MAC was forwarded")
	}
}

func TestPipelineLatencyApplied(t *testing.T) {
	// Full Lumina pipeline: the configured 400 ns. With injection off,
	// only the parse+forward stages run: 5/8 of it (250 ns).
	cases := []struct {
		cfg  config.Switch
		pipe sim.Duration
	}{
		{config.Switch{PipelineLatencyNs: 400, Mirror: false, Inject: true}, 400},
		{config.Switch{PipelineLatencyNs: 400, Mirror: false, Inject: false}, 250},
		{config.Switch{PipelineLatencyNs: 400, L2Only: true}, 250},
	}
	for _, c := range cases {
		r := newRig(t, c.cfg, 0, nil)
		var arrived sim.Time
		wire := dataPkt(1, 0x200)
		r.fromB.SetReceiver(func(w []byte) { arrived = r.s.Now() })
		r.sendA(wire)
		r.s.Run()
		// One-way: serialization + 100 ns prop + pipeline + serialization
		// + 100 ns prop.
		ser := sim.TransferTime(len(wire), 100)
		want := ser + 100 + c.pipe + ser + 100
		if arrived != sim.Time(want) {
			t.Fatalf("cfg %+v: arrival at %v, want %v", c.cfg, arrived, sim.Time(want))
		}
	}
}

func TestITERTracking(t *testing.T) {
	// Figure 3's worked example: sequence 1 2 3 4 2 3 4 3 4 with IPSN 1
	// yields ITERs 1 1 1 1 2 2 2 3 3.
	r := newRig(t, luminaCfg(), 1, nil)
	r.sw.AddConnection(conn(1))
	psns := []uint32{1, 2, 3, 4, 2, 3, 4, 3, 4}
	want := []uint32{1, 1, 1, 1, 2, 2, 2, 3, 3}
	var pkt packet.Packet
	for i, psn := range psns {
		if err := packet.Decode(dataPkt(psn, 0x200), &pkt); err != nil {
			t.Fatal(err)
		}
		if got := r.sw.trackITER(&pkt); got != want[i] {
			t.Fatalf("packet %d (PSN %d): ITER = %d, want %d", i, psn, got, want[i])
		}
	}
}

func TestITERSeedHandlesFirstPacketAtIPSN(t *testing.T) {
	// The first packet arrives with PSN == IPSN; Last_PSN = IPSN-1 must
	// not count it as a retransmission — including when IPSN is 0 and
	// the seed wraps to 2^24-1.
	for _, ipsn := range []uint32{0, 1, 77, packet.PSNMask} {
		r := newRig(t, luminaCfg(), 1, nil)
		r.sw.AddConnection(conn(ipsn))
		var pkt packet.Packet
		packet.Decode(dataPkt(ipsn, 0x200), &pkt)
		if got := r.sw.trackITER(&pkt); got != 1 {
			t.Fatalf("IPSN %d: first packet ITER = %d, want 1", ipsn, got)
		}
	}
}

func TestDropActionDropsButMirrors(t *testing.T) {
	r := newRig(t, luminaCfg(), 1, nil)
	r.sw.AddConnection(conn(1000))
	r.sw.InstallRule(Rule{SrcIP: ipA, DstIP: ipB, DstQPN: 0x200, PSN: 1002, Iter: 1, Action: packet.EventDrop})
	for psn := uint32(1000); psn < 1005; psn++ {
		r.sendA(dataPkt(psn, 0x200))
	}
	r.s.Run()
	if len(r.atB) != 4 {
		t.Fatalf("B received %d frames, want 4 (one dropped)", len(r.atB))
	}
	if len(r.dumps[0]) != 5 {
		t.Fatalf("mirrored %d packets, want 5 (dropped packet is mirrored before the MMU)", len(r.dumps[0]))
	}
	// The mirror copy of the dropped packet carries event=drop.
	dropSeen := false
	for _, d := range r.dumps[0] {
		meta, ok := packet.ExtractMirrorMeta(d)
		if !ok {
			t.Fatal("mirror metadata missing")
		}
		if meta.Event == packet.EventDrop {
			dropSeen = true
			var pkt packet.Packet
			if err := packet.Decode(d, &pkt); err != nil {
				t.Fatal(err)
			}
			if pkt.BTH.PSN != 1002 {
				t.Fatalf("drop-marked mirror has PSN %d", pkt.BTH.PSN)
			}
		}
	}
	if !dropSeen {
		t.Fatal("no mirror packet carries the drop event")
	}
	if got := r.sw.Totals().Dropped; got != 1 {
		t.Fatalf("Dropped counter = %d", got)
	}
}

func TestECNActionMarksAndPreservesICRC(t *testing.T) {
	r := newRig(t, luminaCfg(), 1, nil)
	r.sw.AddConnection(conn(2000))
	r.sw.InstallRule(Rule{SrcIP: ipA, DstIP: ipB, DstQPN: 0x200, PSN: 2000, Iter: 1, Action: packet.EventECN})
	r.sendA(dataPkt(2000, 0x200))
	r.s.Run()
	if len(r.atB) != 1 {
		t.Fatalf("B received %d frames", len(r.atB))
	}
	var pkt packet.Packet
	if err := packet.Decode(r.atB[0], &pkt); err != nil {
		t.Fatal(err)
	}
	if pkt.IP.ECN != packet.ECNCE {
		t.Fatal("forwarded packet not CE-marked")
	}
	if err := packet.VerifyICRC(r.atB[0]); err != nil {
		t.Fatalf("ECN marking broke the iCRC: %v", err)
	}
}

func TestCorruptActionBreaksICRC(t *testing.T) {
	r := newRig(t, luminaCfg(), 1, nil)
	r.sw.AddConnection(conn(2000))
	r.sw.InstallRule(Rule{SrcIP: ipA, DstIP: ipB, DstQPN: 0x200, PSN: 2000, Iter: 1, Action: packet.EventCorrupt})
	r.sendA(dataPkt(2000, 0x200))
	r.s.Run()
	if len(r.atB) != 1 {
		t.Fatalf("B received %d frames", len(r.atB))
	}
	if err := packet.VerifyICRC(r.atB[0]); err == nil {
		t.Fatal("corrupted packet still passes iCRC")
	}
}

func TestSetMigReqActionRewritesAndFixesICRC(t *testing.T) {
	r := newRig(t, luminaCfg(), 1, nil)
	r.sw.AddConnection(conn(2000))
	r.sw.InstallRule(Rule{SrcIP: ipA, DstIP: ipB, DstQPN: 0x200, PSN: 2000, Iter: 1, Action: packet.EventSetMigReq})
	r.sendA(dataPkt(2000, 0x200)) // dataPkt sends MigReq = false
	r.s.Run()
	var pkt packet.Packet
	if err := packet.Decode(r.atB[0], &pkt); err != nil {
		t.Fatal(err)
	}
	if !pkt.BTH.MigReq {
		t.Fatal("MigReq not rewritten to 1")
	}
	if err := packet.VerifyICRC(r.atB[0]); err != nil {
		t.Fatalf("MigReq rewrite must recompute iCRC: %v", err)
	}
}

func TestIterScopedRuleHitsOnlyRetransmission(t *testing.T) {
	r := newRig(t, luminaCfg(), 1, nil)
	r.sw.AddConnection(conn(100))
	// Drop PSN 102 in round 2 only.
	r.sw.InstallRule(Rule{SrcIP: ipA, DstIP: ipB, DstQPN: 0x200, PSN: 102, Iter: 2, Action: packet.EventDrop})
	// Round 1: 100..104. Then "retransmission" from 102.
	for psn := uint32(100); psn <= 104; psn++ {
		r.sendA(dataPkt(psn, 0x200))
	}
	r.sendA(dataPkt(102, 0x200)) // ITER becomes 2 here
	r.sendA(dataPkt(103, 0x200))
	r.s.Run()
	// 7 sent; only the second copy of 102 dropped.
	if len(r.atB) != 6 {
		t.Fatalf("B received %d frames, want 6", len(r.atB))
	}
	if got := r.sw.Totals().Dropped; got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
}

func TestMirrorMetadataSequenceAndTimestamps(t *testing.T) {
	r := newRig(t, luminaCfg(), 1, nil)
	r.sw.AddConnection(conn(100))
	for psn := uint32(100); psn < 110; psn++ {
		r.sendA(dataPkt(psn, 0x200))
	}
	r.s.Run()
	if len(r.dumps[0]) != 10 {
		t.Fatalf("mirrored %d, want 10", len(r.dumps[0]))
	}
	var lastSeq uint64
	var lastTS int64
	for i, d := range r.dumps[0] {
		meta, ok := packet.ExtractMirrorMeta(d)
		if !ok {
			t.Fatal("metadata missing")
		}
		if meta.Seq != uint64(i+1) {
			t.Fatalf("mirror %d has seq %d, want %d", i, meta.Seq, i+1)
		}
		if i > 0 && meta.Timestamp < lastTS {
			t.Fatal("mirror timestamps not monotonic")
		}
		if meta.Seq <= lastSeq {
			t.Fatal("mirror sequence not increasing")
		}
		lastSeq, lastTS = meta.Seq, meta.Timestamp
		// RSS rewrite: destination port no longer 4791.
		if packet.UDPDstPort(d) == packet.RoCEv2Port {
			t.Fatal("mirror copy still targets 4791; RSS rewrite missing")
		}
	}
	if r.sw.MirrorCount() != 10 {
		t.Fatalf("MirrorCount = %d", r.sw.MirrorCount())
	}
}

func TestWeightedRoundRobinSpraying(t *testing.T) {
	r := newRig(t, luminaCfg(), 3, []int{2, 1, 1})
	r.sw.AddConnection(conn(0))
	for i := 0; i < 400; i++ {
		r.sendA(dataPkt(uint32(i), 0x200))
	}
	r.s.Run()
	got := []int{len(r.dumps[0]), len(r.dumps[1]), len(r.dumps[2])}
	if got[0] != 200 || got[1] != 100 || got[2] != 100 {
		t.Fatalf("WRR distribution = %v, want [200 100 100]", got)
	}
}

func TestNonRoCEFramesForwardedUntouched(t *testing.T) {
	r := newRig(t, luminaCfg(), 1, nil)
	p := &packet.Packet{
		Eth: packet.Ethernet{Dst: macB, Src: macA, EtherType: packet.EtherTypeIPv4},
		IP:  packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: ipA, Dst: ipB},
		UDP: packet.UDP{SrcPort: 1234, DstPort: 80},
		BTH: packet.BTH{Opcode: packet.OpSendOnly, DestQP: 1, PSN: 1},
	}
	wire := p.Serialize()
	r.sendA(wire)
	r.s.Run()
	if len(r.atB) != 1 {
		t.Fatal("non-RoCE frame not forwarded")
	}
	if len(r.dumps[0]) != 0 {
		t.Fatal("non-RoCE frame mirrored")
	}
	if r.sw.Totals().RxRoCE != 0 {
		t.Fatal("non-RoCE frame counted as RoCE")
	}
}

func TestL2OnlyModeBypassesPipeline(t *testing.T) {
	cfg := config.Switch{PipelineLatencyNs: 400, Mirror: true, Inject: true, L2Only: true}
	r := newRig(t, cfg, 1, nil)
	r.sw.AddConnection(conn(100))
	r.sw.InstallRule(Rule{SrcIP: ipA, DstIP: ipB, DstQPN: 0x200, PSN: 100, Iter: 1, Action: packet.EventDrop})
	r.sendA(dataPkt(100, 0x200))
	r.s.Run()
	if len(r.atB) != 1 {
		t.Fatal("L2-only switch dropped a packet")
	}
	if len(r.dumps[0]) != 0 {
		t.Fatal("L2-only switch mirrored")
	}
}

func TestMirrorDisabled(t *testing.T) {
	cfg := config.Switch{PipelineLatencyNs: 400, Mirror: false, Inject: true}
	r := newRig(t, cfg, 1, nil)
	r.sw.AddConnection(conn(100))
	r.sw.InstallRule(Rule{SrcIP: ipA, DstIP: ipB, DstQPN: 0x200, PSN: 101, Iter: 1, Action: packet.EventDrop})
	for psn := uint32(100); psn < 103; psn++ {
		r.sendA(dataPkt(psn, 0x200))
	}
	r.s.Run()
	if len(r.dumps[0]) != 0 {
		t.Fatal("mirroring disabled but packets mirrored")
	}
	if len(r.atB) != 2 {
		t.Fatal("injection should still work without mirroring")
	}
}

func TestRuleHitCounting(t *testing.T) {
	r := newRig(t, luminaCfg(), 1, nil)
	r.sw.AddConnection(conn(100))
	r.sw.InstallRule(Rule{SrcIP: ipA, DstIP: ipB, DstQPN: 0x200, PSN: 101, Iter: 1, Action: packet.EventECN})
	r.sendA(dataPkt(100, 0x200))
	r.sendA(dataPkt(101, 0x200))
	r.s.Run()
	rules := r.sw.Rules()
	if len(rules) != 1 || rules[0].Hits != 1 {
		t.Fatalf("rules = %+v", rules)
	}
}

func TestTranslateIntentsWriteDirection(t *testing.T) {
	events := []config.Event{
		{QPN: 1, PSN: 4, Iter: 1, Type: "ecn"},
		{QPN: 2, PSN: 5, Iter: 2, Type: "drop"},
	}
	conns := []ConnMeta{
		{ReqIP: ipA, ReqQPN: 0xfe, ReqIPSN: 1001, RespIP: ipB, RespQPN: 0xea, RespIPSN: 3002},
		{ReqIP: ipA, ReqQPN: 0x11, ReqIPSN: 500, RespIP: ipB, RespQPN: 0x22, RespIPSN: 700},
	}
	rules, err := TranslateIntents(events, "write", conns, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %v", rules)
	}
	// Figure 2's worked example: IPSN 1001, 4th packet → PSN 1004.
	r0 := rules[0]
	if r0.SrcIP != ipA || r0.DstIP != ipB || r0.DstQPN != 0xea || r0.PSN != 1004 || r0.Iter != 1 || r0.Action != packet.EventECN {
		t.Fatalf("rule 0 = %+v", r0)
	}
	r1 := rules[1]
	if r1.PSN != 504 || r1.Iter != 2 || r1.DstQPN != 0x22 {
		t.Fatalf("rule 1 = %+v", r1)
	}
}

func TestTranslateIntentsReadDirection(t *testing.T) {
	events := []config.Event{{QPN: 1, PSN: 5, Iter: 1, Type: "drop"}}
	conns := []ConnMeta{{ReqIP: ipA, ReqQPN: 0xfe, ReqIPSN: 1001, RespIP: ipB, RespQPN: 0xea, RespIPSN: 3002}}
	rules, err := TranslateIntents(events, "read", conns, 100)
	if err != nil {
		t.Fatal(err)
	}
	r0 := rules[0]
	// Read data flows responder → requester, targeting the requester QP,
	// in the requester's PSN space.
	if r0.SrcIP != ipB || r0.DstIP != ipA || r0.DstQPN != 0xfe || r0.PSN != 1005 {
		t.Fatalf("read rule = %+v", r0)
	}
}

func TestTranslateIntentsEveryExpansion(t *testing.T) {
	events := []config.Event{{QPN: 1, PSN: 1, Iter: 1, Type: "ecn", Every: 50}}
	conns := []ConnMeta{{ReqIP: ipA, ReqQPN: 1, ReqIPSN: 0, RespIP: ipB, RespQPN: 2, RespIPSN: 0}}
	rules, err := TranslateIntents(events, "write", conns, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 { // packets 1, 51, 101, 151
		t.Fatalf("expanded to %d rules, want 4", len(rules))
	}
	if rules[1].PSN != 50 {
		t.Fatalf("second rule PSN = %d, want 50 (51st packet, IPSN 0)", rules[1].PSN)
	}
}

func TestTranslateIntentsErrors(t *testing.T) {
	conns := []ConnMeta{{ReqIP: ipA, ReqQPN: 1, ReqIPSN: 0, RespIP: ipB, RespQPN: 2}}
	if _, err := TranslateIntents([]config.Event{{QPN: 2, PSN: 1, Type: "drop"}}, "write", conns, 10); err == nil {
		t.Error("out-of-range qpn accepted")
	}
	if _, err := TranslateIntents([]config.Event{{QPN: 1, PSN: 1, Type: "nope"}}, "write", conns, 10); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := TranslateIntents([]config.Event{{QPN: 1, PSN: 0, Type: "drop"}}, "write", conns, 10); err == nil {
		t.Error("zero psn accepted")
	}
}
