package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a lumina-serve daemon. The zero value is unusable;
// set Base (e.g. "http://127.0.0.1:8642").
type Client struct {
	// Base is the daemon's root URL, without a trailing slash.
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes a JSON response into out (which may
// be nil). Non-2xx responses become errors carrying the server's error
// message.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		js, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(js)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.Base, "/")+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("serve: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("serve: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts a scenario and returns its (possibly already finished)
// status.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (*RunStatus, error) {
	var st RunStatus
	if err := c.do(ctx, http.MethodPost, "/v1/runs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a run's current status.
func (c *Client) Status(ctx context.Context, id string) (*RunStatus, error) {
	var st RunStatus
	if err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitDone polls until the run reaches a terminal state (done or
// failed) or ctx expires. poll <= 0 means 50ms.
func (c *Client) WaitDone(ctx context.Context, id string, poll time.Duration) (*RunStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State == StateDone || st.State == StateFailed {
			return st, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Artifact downloads one artifact's bytes.
func (c *Client) Artifact(ctx context.Context, id, name string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(c.Base, "/")+"/v1/runs/"+id+"/artifacts/"+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: artifact %s/%s: HTTP %d: %s", id, name, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	return data, nil
}

// CacheStats fetches the daemon's result-cache counters.
func (c *Client) CacheStats(ctx context.Context) (*CacheStats, error) {
	var st CacheStats
	if err := c.do(ctx, http.MethodGet, "/v1/cache/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Healthz checks daemon liveness and returns its health document.
func (c *Client) Healthz(ctx context.Context) (*Health, error) {
	var h Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}
