// Package serve turns Lumina into a long-lived service: an HTTP daemon
// that accepts scenario submissions, executes them on the deterministic
// engine, and answers repeat submissions from the content-addressed
// result cache (internal/resultcache) without re-simulating.
//
// Because every run is a pure function of (scenario, profile, options,
// code version), the service can be aggressively idempotent: the run ID
// *is* the cache key ID, so resubmitting the same work — concurrently,
// sequentially, or after a daemon restart with a warm cache — always
// converges on one execution and byte-identical artifacts.
//
// API surface (Go 1.22 ServeMux patterns):
//
//	POST /v1/runs                          submit a scenario; dedups in-flight and cached work
//	GET  /v1/runs/{id}                     run status (state, verdicts, artifact names)
//	GET  /v1/runs/{id}/artifacts/{name}    one artifact's bytes (summary.json, report.json, ...)
//	GET  /v1/runs/{id}/events              NDJSON stream of state transitions
//	GET  /v1/cache/stats                   result-cache counters
//	GET  /healthz                          liveness + build stamp
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/lumina-sim/lumina/internal/config"
	"github.com/lumina-sim/lumina/internal/engine"
	"github.com/lumina-sim/lumina/internal/orchestrator"
	"github.com/lumina-sim/lumina/internal/resultcache"
	"github.com/lumina-sim/lumina/internal/rnic"
	"github.com/lumina-sim/lumina/internal/sim"
	"github.com/lumina-sim/lumina/internal/telemetry"
	"github.com/lumina-sim/lumina/internal/version"
)

// maxScenarioBytes bounds a submission body: scenarios are small YAML
// documents, so anything past this is a client error, not a run.
const maxScenarioBytes = 1 << 20

// Config tunes a Server.
type Config struct {
	// Cache, when non-nil, answers repeat submissions without running
	// and persists fresh results. Nil disables caching (every submit
	// simulates; dedup still covers concurrent in-flight duplicates).
	Cache *resultcache.Cache
	// Workers is the number of concurrent simulations (0 = NumCPU).
	Workers int
	// QueueDepth bounds the pending-run queue; a full queue rejects
	// submissions with 503 rather than buffering without limit
	// (0 = 64).
	QueueDepth int
	// JobTimeout bounds each run's wall-clock time (0 = no bound); a
	// timed-out run fails with the engine's TimeoutError.
	JobTimeout time.Duration
	// Hub receives engine probes for served runs.
	Hub *telemetry.Hub
	// Run substitutes the execution function (tests); nil means
	// orchestrator.Run.
	Run engine.RunFunc
}

// State is a run's lifecycle phase.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// SubmitRequest is the POST /v1/runs body.
type SubmitRequest struct {
	// Scenario is the test configuration YAML (same format lumina
	// -config reads).
	Scenario string `json:"scenario"`
	// Profile optionally retargets both hosts' NIC model (cx4, cx5,
	// e810, xl170b, spec). It is a separate cache-key dimension, like a
	// corpus matrix column; empty runs the scenario's own NIC types.
	Profile string `json:"profile,omitempty"`
	// DeadlineNs overrides the simulated-time deadline (0 = default).
	DeadlineNs int64 `json:"deadline_ns,omitempty"`
	// Telemetry, INT and Coverage enable the corresponding observe-only
	// instruments; each changes the options cache-key dimension.
	Telemetry bool `json:"telemetry,omitempty"`
	INT       bool `json:"int,omitempty"`
	Coverage  bool `json:"coverage,omitempty"`
}

// RunStatus is the GET /v1/runs/{id} document (and the submit
// response).
type RunStatus struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error,omitempty"`
	// Result is the judged outcome, present once the run is done.
	Result *resultcache.Result `json:"result,omitempty"`
	// Artifacts lists the downloadable artifact names, sorted.
	Artifacts []string `json:"artifacts,omitempty"`
}

// Event is one NDJSON record on the /events stream.
type Event struct {
	Seq      int    `json:"seq"`
	State    State  `json:"state"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Health is the GET /healthz document.
type Health struct {
	Status  string `json:"status"`
	Version string `json:"version"`
	Runs    int    `json:"runs"`
}

// CacheStats is the GET /v1/cache/stats document.
type CacheStats struct {
	Enabled bool `json:"enabled"`
	resultcache.Stats
}

// run is one submitted scenario's lifecycle.
type run struct {
	id        string
	key       resultcache.Key
	cfg       config.Test // profile-retargeted, ready to execute
	opts      orchestrator.Options
	state     State
	cacheHit  bool
	errMsg    string
	result    *resultcache.Result
	artifacts map[string][]byte
	events    []Event
	notify    chan struct{} // closed on every event append, then replaced
}

// Server is the lumina-serve HTTP handler plus its worker pool. Create
// with New, serve with net/http, stop with Shutdown.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu       sync.Mutex
	runs     map[string]*run
	queue    chan *run
	draining bool

	workers sync.WaitGroup
}

// New builds a Server and starts its workers.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		runs:  map[string]*run{},
		queue: make(chan *run, cfg.QueueDepth),
	}
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/runs/{id}/artifacts/{name}", s.handleArtifact)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/cache/stats", s.handleCacheStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown stops accepting submissions and drains every queued and
// in-flight run, or gives up when ctx expires. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.workers.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) worker() {
	defer s.workers.Done()
	for r := range s.queue {
		s.execute(r)
	}
}

// execute runs one queued submission on the engine (panic isolation,
// wall-clock timeout) and lands the result in the run and the cache.
func (s *Server) execute(r *run) {
	s.transition(r, StateRunning, nil)
	res := engine.Run(context.Background(),
		[]engine.Job{{Label: r.id, Cfg: r.cfg, Opts: r.opts}},
		engine.Options{Workers: 1, Timeout: s.cfg.JobTimeout, Hub: s.cfg.Hub, Run: s.cfg.Run})[0]
	if res.Err != nil {
		s.transition(r, StateFailed, res.Err)
		return
	}
	arts, err := resultcache.Render(res.Report)
	if err != nil {
		s.transition(r, StateFailed, err)
		return
	}
	parsed, err := resultcache.ParseResult(arts[resultcache.ResultName])
	if err != nil {
		s.transition(r, StateFailed, err)
		return
	}
	if s.cfg.Cache != nil {
		// Best-effort: an unwritable cache degrades to cold submissions,
		// it never fails a run that has already produced its artifacts.
		_ = s.cfg.Cache.Put(r.key, arts)
	}
	s.mu.Lock()
	r.result, r.artifacts = parsed, arts
	s.mu.Unlock()
	s.transition(r, StateDone, nil)
}

// transition moves a run to state, records the event and wakes every
// /events stream.
func (s *Server) transition(r *run, state State, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.state = state
	if err != nil {
		r.errMsg = err.Error()
	}
	s.appendEventLocked(r)
}

func (s *Server) appendEventLocked(r *run) {
	r.events = append(r.events, Event{
		Seq:      len(r.events),
		State:    r.state,
		CacheHit: r.cacheHit,
		Error:    r.errMsg,
	})
	close(r.notify)
	r.notify = make(chan struct{})
}

func (s *Server) statusLocked(r *run) *RunStatus {
	st := &RunStatus{ID: r.id, State: r.state, CacheHit: r.cacheHit, Error: r.errMsg, Result: r.result}
	for name := range r.artifacts {
		st.Artifacts = append(st.Artifacts, name)
	}
	sort.Strings(st.Artifacts)
	return st
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var sr SubmitRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxScenarioBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	cfg, err := config.Parse([]byte(sr.Scenario))
	if err != nil {
		httpError(w, http.StatusBadRequest, "scenario: %v", err)
		return
	}
	if err := cfg.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "scenario: %v", err)
		return
	}
	if sr.Profile != "" {
		if _, err := rnic.ProfileByName(sr.Profile); err != nil {
			httpError(w, http.StatusBadRequest, "profile: %v", err)
			return
		}
	}
	opts := orchestrator.Options{
		Deadline:  sim.Duration(sr.DeadlineNs),
		Lineage:   true,
		Telemetry: sr.Telemetry,
		INT:       sr.INT,
		Coverage:  sr.Coverage,
	}
	if opts.Deadline <= 0 {
		opts.Deadline = orchestrator.DefaultOptions().Deadline
	}
	// The scenario dimension hashes the document as submitted; the
	// profile is its own dimension, exactly like a corpus matrix column,
	// so served runs and corpus replays of the same scenario share cache
	// entries.
	key, err := resultcache.KeyFor(cfg, sr.Profile, opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, "scenario: %v", err)
		return
	}
	runCfg := cfg
	if sr.Profile != "" {
		runCfg.Requester.NIC.Type = sr.Profile
		runCfg.Responder.NIC.Type = sr.Profile
	}
	id := key.ID()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	// Idempotent resubmission: the same work (same run ID) still in
	// flight is returned as-is — one execution serves every concurrent
	// duplicate.
	existing, have := s.runs[id]
	if have && (existing.state == StateQueued || existing.state == StateRunning) {
		st := s.statusLocked(existing)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
		return
	}
	// Terminal (or unknown) work goes back through the cache so a
	// resubmission is an observable, counted hit — the same answer the
	// daemon would give after a restart with a warm cache.
	r := &run{id: id, key: key, cfg: runCfg, opts: opts, state: StateQueued, notify: make(chan struct{})}
	if s.cfg.Cache != nil {
		if arts, ok := s.cfg.Cache.Get(key); ok {
			if parsed, err := resultcache.ParseResult(arts[resultcache.ResultName]); err == nil {
				r.state, r.cacheHit = StateDone, true
				r.result, r.artifacts = parsed, arts
				s.runs[id] = r
				s.appendEventLocked(r)
				st := s.statusLocked(r)
				s.mu.Unlock()
				writeJSON(w, http.StatusOK, st)
				return
			}
		}
	}
	// Cache-less (or evicted) but already done in memory: reuse it;
	// only failed runs are re-executed.
	if have && existing.state == StateDone {
		st := s.statusLocked(existing)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
		return
	}
	select {
	case s.queue <- r:
	default:
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "run queue full (%d pending)", s.cfg.QueueDepth)
		return
	}
	s.runs[id] = r
	s.appendEventLocked(r)
	st := s.statusLocked(r)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, st)
}

// lookup resolves the {id} path value, or writes 404.
func (s *Server) lookup(w http.ResponseWriter, req *http.Request) *run {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[req.PathValue("id")]
	if !ok {
		httpError(w, http.StatusNotFound, "no such run %q", req.PathValue("id"))
		return nil
	}
	return r
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(w, req)
	if r == nil {
		return
	}
	s.mu.Lock()
	st := s.statusLocked(r)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleArtifact(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(w, req)
	if r == nil {
		return
	}
	name := req.PathValue("name")
	s.mu.Lock()
	state := r.state
	data, ok := r.artifacts[name]
	s.mu.Unlock()
	if state != StateDone {
		httpError(w, http.StatusConflict, "run %s is %s, artifacts exist only once done", r.id, state)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "run %s has no artifact %q", r.id, name)
		return
	}
	if name == "trace.pcap" {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	w.Write(data)
}

func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(w, req)
	if r == nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	next := 0
	for {
		s.mu.Lock()
		pending := append([]Event(nil), r.events[next:]...)
		terminal := r.state == StateDone || r.state == StateFailed
		notify := r.notify
		s.mu.Unlock()
		for _, e := range pending {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		next += len(pending)
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-req.Context().Done():
			return
		}
	}
}

func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	st := CacheStats{Enabled: s.cfg.Cache != nil}
	if s.cfg.Cache != nil {
		st.Stats = s.cfg.Cache.Stats()
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.runs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Health{Status: "ok", Version: version.Stamp(), Runs: n})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
