package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lumina-sim/lumina/internal/config"
	"github.com/lumina-sim/lumina/internal/orchestrator"
	"github.com/lumina-sim/lumina/internal/resultcache"
)

// scenarioYAML renders a small drop scenario as submission YAML.
func scenarioYAML(t *testing.T, mutate func(*config.Test)) string {
	t.Helper()
	cfg := config.Default()
	cfg.Name = "serve-test"
	cfg.Traffic.NumMsgsPerQP = 3
	cfg.Traffic.Events = []config.Event{{QPN: 1, PSN: 1, Type: "drop", Iter: 1}}
	if mutate != nil {
		mutate(&cfg)
	}
	y, err := cfg.MarshalYAML()
	if err != nil {
		t.Fatal(err)
	}
	return string(y)
}

func startServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return s, &Client{Base: ts.URL}
}

func TestServeSubmitRunArtifacts(t *testing.T) {
	_, c := startServer(t, Config{Workers: 2})
	ctx := context.Background()

	st, err := c.Submit(ctx, SubmitRequest{Scenario: scenarioYAML(t, nil), Profile: "cx5"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.CacheHit {
		t.Fatalf("fresh submit status = %+v", st)
	}
	final, err := c.WaitDone(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("run finished %s: %s", final.State, final.Error)
	}
	if final.Result == nil || final.Result.SummarySHA256 == "" {
		t.Fatalf("done run has no result: %+v", final)
	}
	if len(final.Artifacts) == 0 {
		t.Fatal("done run lists no artifacts")
	}
	summary, err := c.Artifact(ctx, st.ID, "summary.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(summary, &doc); err != nil || doc.Schema != orchestrator.SummarySchema {
		t.Fatalf("served summary.json schema %q err %v", doc.Schema, err)
	}
	if _, err := c.Artifact(ctx, st.ID, "no-such-artifact"); err == nil {
		t.Fatal("missing artifact did not error")
	}
}

// TestServeCacheHitIsByteIdentical is the tentpole guarantee: a
// resubmission answered from the cache returns exactly the bytes a
// fresh simulation produced — for every artifact — and says so.
func TestServeCacheHitIsByteIdentical(t *testing.T) {
	cache, err := resultcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, c := startServer(t, Config{Workers: 2, Cache: cache})
	ctx := context.Background()
	req := SubmitRequest{Scenario: scenarioYAML(t, nil), Profile: "cx5", INT: true, Coverage: true}

	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := c.WaitDone(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.State != StateDone || fresh.CacheHit {
		t.Fatalf("first run status = %+v (%s)", fresh, fresh.Error)
	}
	freshArts := map[string][]byte{}
	for _, name := range fresh.Artifacts {
		if freshArts[name], err = c.Artifact(ctx, st.ID, name); err != nil {
			t.Fatal(err)
		}
	}

	again, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != st.ID {
		t.Fatalf("resubmission got run %s, want %s", again.ID, st.ID)
	}
	if again.State != StateDone || !again.CacheHit {
		t.Fatalf("resubmission not a done cache hit: %+v", again)
	}
	if len(again.Artifacts) != len(fresh.Artifacts) {
		t.Fatalf("cache hit lists %v, fresh run listed %v", again.Artifacts, fresh.Artifacts)
	}
	for _, name := range fresh.Artifacts {
		served, err := c.Artifact(ctx, st.ID, name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(served, freshArts[name]) {
			t.Fatalf("artifact %s differs between fresh run and cache hit", name)
		}
	}
	stats, err := c.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Enabled || stats.Hits == 0 || stats.Puts == 0 {
		t.Fatalf("cache stats = %+v", stats)
	}

	// A restarted daemon on the same cache answers without running.
	_, c2 := startServer(t, Config{Workers: 2, Cache: cache})
	warm, err := c2.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.State != StateDone || !warm.CacheHit || warm.ID != st.ID {
		t.Fatalf("warm restart submit = %+v", warm)
	}
}

// TestServeInFlightDedup pins the single-flight property: concurrent
// submissions of the same work share one run ID and one execution.
func TestServeInFlightDedup(t *testing.T) {
	release := make(chan struct{})
	var executions atomic.Int32
	slow := func(cfg config.Test, opts orchestrator.Options) (*orchestrator.Report, error) {
		executions.Add(1)
		<-release
		return orchestrator.Run(cfg, opts)
	}
	_, c := startServer(t, Config{Workers: 2, Run: slow})
	ctx := context.Background()
	req := SubmitRequest{Scenario: scenarioYAML(t, nil)}

	first, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	ids := make([]string, 8)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.Submit(ctx, req)
			if err == nil {
				ids[i] = st.ID
			}
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id != first.ID {
			t.Fatalf("submission %d got run %q, want %q", i, id, first.ID)
		}
	}
	close(release)
	if _, err := c.WaitDone(ctx, first.ID, 0); err != nil {
		t.Fatal(err)
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("%d executions for one run ID", n)
	}
}

func TestServeQueueFullRejects(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	slow := func(cfg config.Test, opts orchestrator.Options) (*orchestrator.Report, error) {
		<-release
		return orchestrator.Run(cfg, opts)
	}
	_, c := startServer(t, Config{Workers: 1, QueueDepth: 1, Run: slow})
	ctx := context.Background()

	// Distinct scenarios: the first occupies the worker, the second the
	// queue slot; the third must bounce with 503, not block.
	submit := func(size int) (*RunStatus, error) {
		return c.Submit(ctx, SubmitRequest{Scenario: scenarioYAML(t, func(cfg *config.Test) {
			cfg.Traffic.MessageSize = size
		})})
	}
	first, err := submit(1024)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has dequeued the first run, so the queue
	// slot is free for the second.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Status(ctx, first.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first run never started: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := submit(2048); err != nil {
		t.Fatalf("second submission should occupy the queue slot: %v", err)
	}
	if _, err := submit(4096); err == nil {
		t.Fatal("third submission was accepted with a full queue")
	}
}

func TestServeEventsStreamNDJSON(t *testing.T) {
	release := make(chan struct{})
	slow := func(cfg config.Test, opts orchestrator.Options) (*orchestrator.Report, error) {
		<-release
		return orchestrator.Run(cfg, opts)
	}
	s, _ := startServer(t, Config{Workers: 1, Run: slow})
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := &Client{Base: ts.URL}
	ctx := context.Background()

	st, err := c.Submit(ctx, SubmitRequest{Scenario: scenarioYAML(t, nil)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type %q", ct)
	}
	close(release)
	var states []State
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if e.Seq != len(states) {
			t.Fatalf("event seq %d at position %d", e.Seq, len(states))
		}
		states = append(states, e.State)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 || states[0] != StateQueued {
		t.Fatalf("event states %v: want queued first", states)
	}
	if last := states[len(states)-1]; last != StateDone {
		t.Fatalf("event states %v: want done last", states)
	}
}

func TestServeShutdownDrainsInFlight(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	slow := func(cfg config.Test, opts orchestrator.Options) (*orchestrator.Report, error) {
		started <- struct{}{}
		<-release
		return orchestrator.Run(cfg, opts)
	}
	s := New(Config{Workers: 1, Run: slow})
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := &Client{Base: ts.URL}
	ctx := context.Background()

	st, err := c.Submit(ctx, SubmitRequest{Scenario: scenarioYAML(t, nil)})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Draining: new work is refused while the in-flight run completes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Submit(ctx, SubmitRequest{Scenario: scenarioYAML(t, func(cfg *config.Test) {
			cfg.Traffic.MessageSize = 8192
		})})
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server still accepts submissions")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before the in-flight run finished", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("drained run state %s: %s", final.State, final.Error)
	}
}

func TestServeHealthzAndBadRequests(t *testing.T) {
	_, c := startServer(t, Config{Workers: 1})
	ctx := context.Background()
	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version == "" {
		t.Fatalf("healthz = %+v", h)
	}
	stats, err := c.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Enabled {
		t.Fatalf("cache-less daemon reports enabled stats: %+v", stats)
	}
	if _, err := c.Submit(ctx, SubmitRequest{Scenario: "not: [valid"}); err == nil {
		t.Fatal("malformed scenario accepted")
	}
	if _, err := c.Submit(ctx, SubmitRequest{Scenario: scenarioYAML(t, nil), Profile: "nope"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := c.Status(ctx, "deadbeef"); err == nil {
		t.Fatal("unknown run id did not 404")
	}
}
