package minimize

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/lumina-sim/lumina/internal/config"
	"github.com/lumina-sim/lumina/internal/fuzz"
	"github.com/lumina-sim/lumina/internal/orchestrator"
	"github.com/lumina-sim/lumina/internal/sim"
	"github.com/lumina-sim/lumina/internal/telemetry"
)

// retryExhaustedConfig builds a config whose anomaly is an unrecovered
// drop: every transmission of conn 1's second packet is dropped until
// the requester QP exhausts its retry budget, so the retrans verdict
// fails. The event list carries deliberate junk the minimizer should
// strip: drop rules past the exhaustion point that never fire, an ECN
// mark, and a recovered drop on a second connection.
func retryExhaustedConfig() config.Test {
	c := config.Default()
	c.Traffic.NumConnections = 2
	c.Traffic.NumMsgsPerQP = 1
	c.Traffic.MessageSize = 4096
	for it := 1; it <= 12; it++ {
		c.Traffic.Events = append(c.Traffic.Events,
			config.Event{QPN: 1, PSN: 2, Type: "drop", Iter: it})
	}
	c.Traffic.Events = append(c.Traffic.Events,
		config.Event{QPN: 1, PSN: 1, Type: "ecn", Iter: 1},
		config.Event{QPN: 2, PSN: 2, Type: "drop", Iter: 1})
	return c
}

func TestMinimizeShrinksAndPreservesAnomaly(t *testing.T) {
	cfg := retryExhaustedConfig()
	res, err := Minimize(cfg, Options{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomaly.String() != "retrans" {
		t.Fatalf("preserved anomaly = %s, want retrans", res.Anomaly)
	}
	if res.FinalEvents >= res.InitialEvents {
		t.Fatalf("events %d → %d: not strictly smaller", res.InitialEvents, res.FinalEvents)
	}
	// The junk must be gone: every surviving event is a drop on conn 1's
	// second packet.
	for _, ev := range res.Config.Traffic.Events {
		if ev.QPN != 1 || ev.PSN != 2 || ev.Type != "drop" {
			t.Fatalf("minimized config kept junk event %+v", ev)
		}
	}
	// The second connection existed only to host junk; the simplifier
	// rounds should have removed it.
	if res.Config.Traffic.NumConnections != 1 {
		t.Errorf("num-connections = %d, want 1", res.Config.Traffic.NumConnections)
	}
	// Replaying the minimized config must reproduce the original verdict
	// signature.
	rep, err := orchestrator.Run(res.Config, orchestrator.Options{
		Deadline: orchestrator.DefaultOptions().Deadline, Lineage: true})
	if err != nil {
		t.Fatal(err)
	}
	var failed []string
	for _, v := range rep.Verdicts {
		if !v.Pass {
			failed = append(failed, v.Analyzer)
		}
	}
	if len(failed) != 1 || failed[0] != "retrans" {
		t.Fatalf("minimized replay failed verdicts = %v, want [retrans]", failed)
	}
	// 1-minimality of the event list: removing any single remaining
	// event must dissolve the anomaly.
	for i := range res.Config.Traffic.Events {
		c := res.Config
		c.Traffic.Events = append(append([]config.Event(nil),
			res.Config.Traffic.Events[:i]...), res.Config.Traffic.Events[i+1:]...)
		rep, err := orchestrator.Run(c, orchestrator.Options{
			Deadline: orchestrator.DefaultOptions().Deadline, Lineage: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Verdicts {
			if !v.Pass {
				t.Fatalf("dropping event %d still fails %s: not 1-minimal", i, v.Analyzer)
			}
		}
	}
}

func TestMinimizeDeterministicAcrossWorkers(t *testing.T) {
	// The minimized scenario and the step log must be byte-identical
	// for every worker count: candidate batches fan out over the engine
	// but all accept decisions consume results in submission order.
	type outcome struct {
		yaml  []byte
		steps []Step
		evals int
	}
	run := func(workers int) outcome {
		res, err := Minimize(retryExhaustedConfig(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		y, err := res.Config.MarshalYAML()
		if err != nil {
			t.Fatal(err)
		}
		return outcome{yaml: y, steps: res.Steps, evals: res.Evaluations}
	}
	serial := run(1)
	for _, workers := range []int{8} {
		got := run(workers)
		if !bytes.Equal(got.yaml, serial.yaml) {
			t.Errorf("workers=%d minimized YAML diverged:\n%s\nvs serial:\n%s",
				workers, got.yaml, serial.yaml)
		}
		if !reflect.DeepEqual(got.steps, serial.steps) {
			t.Errorf("workers=%d step log diverged (%d vs %d steps)",
				workers, len(got.steps), len(serial.steps))
		}
		if got.evals != serial.evals {
			t.Errorf("workers=%d evaluations = %d, serial = %d", workers, got.evals, serial.evals)
		}
	}
}

func TestMinimizeCleanConfigIsNoAnomaly(t *testing.T) {
	c := config.Default()
	if _, err := Minimize(c, Options{}); err != ErrNoAnomaly {
		t.Fatalf("err = %v, want ErrNoAnomaly", err)
	}
}

func TestMinimizeEmitsStepProbes(t *testing.T) {
	hub := telemetry.NewHub()
	res, err := Minimize(retryExhaustedConfig(), Options{Workers: 1, Hub: hub})
	if err != nil {
		t.Fatal(err)
	}
	var probes int
	for _, ev := range hub.Events() {
		if ev.Kind == telemetry.KindMinimizeStep {
			probes++
		}
	}
	if probes != len(res.Steps) {
		t.Fatalf("minimize.step probes = %d, steps = %d", probes, len(res.Steps))
	}
}

// exhaustionTarget wraps retryExhaustedConfig as a fuzz target: the
// genome adds extra junk ECN marks, and the score is the number of
// failed messages, so any genome is an anomaly.
func exhaustionTarget() fuzz.Target {
	return fuzz.Target{
		Name:   "retry-exhaustion",
		Params: []fuzz.Param{{Name: "junk-ecn", Min: 1, Max: 4}},
		Build: func(g fuzz.Genome) config.Test {
			c := retryExhaustedConfig()
			for i := 0; i < g[0]; i++ {
				c.Traffic.Events = append(c.Traffic.Events,
					config.Event{QPN: 2, PSN: 1 + i, Type: "ecn", Iter: 1})
			}
			return c
		},
		Score: func(g fuzz.Genome, rep *orchestrator.Report) float64 {
			failed := 0
			for i := range rep.Traffic.Conns {
				for st, n := range rep.Traffic.Conns[i].Statuses {
					if st != "OK" {
						failed += n
					}
				}
			}
			return float64(failed)
		},
		Threshold: 1,
	}
}

func TestMinimizeFuzzFindingFromFixedSeed(t *testing.T) {
	// The acceptance path: a finding discovered by the fuzzer from a
	// fixed seed minimizes to a strictly smaller event set whose replay
	// still yields the original anomaly verdict.
	f, err := fuzz.New(exhaustionTarget(), fuzz.Options{
		Seed: 11, PoolSize: 2, AcceptProb: 0.2,
		Deadline: 600 * sim.Second, StopAtFirstAnomaly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fres, err := f.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fres.Findings) == 0 {
		t.Fatal("fixed-seed fuzz run produced no finding")
	}
	fd := fres.Findings[0]
	res, err := Minimize(fd.Report.Config, Options{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalEvents >= len(fd.Report.Config.Traffic.Events) {
		t.Fatalf("finding events %d → %d: not strictly smaller",
			len(fd.Report.Config.Traffic.Events), res.FinalEvents)
	}
	if !strings.Contains(res.Anomaly.String(), "retrans") {
		t.Fatalf("anomaly = %s, want retrans preserved", res.Anomaly)
	}
}
