// Package minimize shrinks an anomalous test configuration — typically a
// fuzzer finding — down to a minimal reproducer while preserving its
// anomaly, closing the fuzz → minimize → regress loop: the paper reruns
// fuzzer-discovered configurations to confirm bugs (§4), and a minimized
// configuration is the form worth keeping in a regression corpus.
//
// The anomaly is identified by its verdict signature: the set of
// analyzer verdicts (analyzer.Verdicts) that fail on the original run,
// plus whether the run timed out. Minimization is delta debugging over
// the injected event list (ddmin: drop ever-finer complements) followed
// by rounds of single-field simplifications (fewer connections, smaller
// messages, canonical seed, …); a candidate is kept only if its verdict
// signature is identical to the original's.
//
// Every candidate batch is evaluated in parallel on the deterministic
// run engine, but all accept/reject decisions consume results in
// submission order, so the minimized configuration and the step log are
// byte-identical for every worker count.
package minimize

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/lumina-sim/lumina/internal/config"
	"github.com/lumina-sim/lumina/internal/engine"
	"github.com/lumina-sim/lumina/internal/orchestrator"
	"github.com/lumina-sim/lumina/internal/sim"
	"github.com/lumina-sim/lumina/internal/telemetry"
)

// ErrNoAnomaly reports that the configuration's baseline run produced no
// failing verdict and no timeout — there is nothing to preserve, so
// minimization would trivially delete everything.
var ErrNoAnomaly = errors.New("minimize: baseline run shows no anomaly (all verdicts pass, no timeout)")

// Anomaly is the signature minimization preserves.
type Anomaly struct {
	// Failed lists the analyzers whose verdicts fail, sorted.
	Failed []string `json:"failed_verdicts"`
	// TimedOut records whether the run exceeded its virtual deadline.
	TimedOut bool `json:"timed_out"`
}

// Empty reports whether the signature describes a clean run.
func (a Anomaly) Empty() bool { return len(a.Failed) == 0 && !a.TimedOut }

// Equal compares two signatures.
func (a Anomaly) Equal(b Anomaly) bool {
	if a.TimedOut != b.TimedOut || len(a.Failed) != len(b.Failed) {
		return false
	}
	for i := range a.Failed {
		if a.Failed[i] != b.Failed[i] {
			return false
		}
	}
	return true
}

func (a Anomaly) String() string {
	parts := append([]string(nil), a.Failed...)
	if a.TimedOut {
		parts = append(parts, "timeout")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// anomalyOf extracts the signature from a finished run.
func anomalyOf(rep *orchestrator.Report) Anomaly {
	var a Anomaly
	for _, v := range rep.Verdicts {
		if !v.Pass {
			a.Failed = append(a.Failed, v.Analyzer)
		}
	}
	sort.Strings(a.Failed)
	a.TimedOut = rep.TimedOut
	return a
}

// Options tune a minimization.
type Options struct {
	// Deadline bounds each evaluation's virtual time (default 600 s,
	// matching orchestrator.DefaultOptions). It must match the deadline
	// under which the anomaly was found: timeout anomalies are
	// deadline-relative.
	Deadline sim.Duration
	// Workers is the engine pool size used to evaluate a candidate
	// batch (0 = one per CPU, 1 = serial). The result is byte-identical
	// for every value.
	Workers int
	// Hub, when non-nil, receives one minimize.step probe per candidate
	// tried, in decision order.
	Hub *telemetry.Hub
}

// Step records one candidate the minimizer tried, in decision order.
type Step struct {
	Round  int    `json:"round"`
	Action string `json:"action"` // "drop-events" | "simplify"
	Detail string `json:"detail"`
	Events int    `json:"events"` // candidate's event count
	Kept   bool   `json:"kept"`   // candidate accepted as the new base
}

// Result is a finished minimization.
type Result struct {
	// Config is the minimized configuration (validated).
	Config config.Test
	// Anomaly is the preserved verdict signature.
	Anomaly Anomaly
	// Steps logs every candidate tried, in decision order.
	Steps []Step
	// Evaluations counts simulation runs, including the baseline.
	Evaluations   int
	InitialEvents int
	FinalEvents   int
}

type minimizer struct {
	opts   Options
	target Anomaly
	res    *Result
	round  int
}

// Minimize shrinks cfg to a 1-minimal reproducer of its own anomaly: no
// single injected event can be removed, and no single simplification
// pass applies, without changing the verdict signature. It returns
// ErrNoAnomaly if the baseline run is clean.
func Minimize(cfg config.Test, opts Options) (*Result, error) {
	if opts.Deadline <= 0 {
		opts.Deadline = orchestrator.DefaultOptions().Deadline
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("minimize: %w", err)
	}
	m := &minimizer{opts: opts, res: &Result{InitialEvents: len(cfg.Traffic.Events)}}

	base := m.evaluate([]config.Test{cfg})[0]
	if base.Err != nil {
		return nil, fmt.Errorf("minimize: baseline run: %w", base.Err)
	}
	m.target = anomalyOf(base.Report)
	if m.target.Empty() {
		return nil, ErrNoAnomaly
	}

	// Alternate event delta-debugging and field simplification until a
	// joint fixpoint: a simplification (smaller message, fewer
	// connections) can make further events redundant, and vice versa.
	cur := cfg
	for {
		before := len(cur.Traffic.Events)
		cur = m.ddminEvents(cur)
		next, changed := m.simplifyFields(cur)
		cur = next
		if len(cur.Traffic.Events) == before && !changed {
			break
		}
	}

	m.res.Config = cur
	m.res.Anomaly = m.target
	m.res.FinalEvents = len(cur.Traffic.Events)
	return m.res, nil
}

// evaluate fans candidates out over the run engine and returns results
// in submission order. Invalid candidates surface as errored results.
func (m *minimizer) evaluate(cfgs []config.Test) []engine.JobResult {
	jobs := make([]engine.Job, len(cfgs))
	for i, c := range cfgs {
		jobs[i] = engine.Job{
			Label: fmt.Sprintf("minimize-cand-%d", i),
			Cfg:   c,
			Opts:  orchestrator.Options{Deadline: m.opts.Deadline, Lineage: true},
		}
	}
	m.res.Evaluations += len(jobs)
	return engine.Run(context.Background(), jobs, engine.Options{Workers: m.opts.Workers})
}

// candidate is one proposed shrink of the current configuration.
type candidate struct {
	cfg    config.Test
	detail string
}

// acceptFirst evaluates candidates in parallel, logs every candidate in
// submission order, and returns the index of the first one preserving
// the target anomaly (-1 if none). Errored candidates (for example a
// simplification that invalidates the config) are simply not kept.
func (m *minimizer) acceptFirst(action string, cands []candidate) int {
	results := m.evaluate(configsOf(cands))
	accepted := -1
	for i := range cands {
		keep := false
		if accepted < 0 && results[i].Err == nil {
			keep = anomalyOf(results[i].Report).Equal(m.target)
		}
		if keep {
			accepted = i
		}
		step := Step{
			Round:  m.round,
			Action: action,
			Detail: cands[i].detail,
			Events: len(cands[i].cfg.Traffic.Events),
			Kept:   keep,
		}
		m.res.Steps = append(m.res.Steps, step)
		m.opts.Hub.EmitArgs(telemetry.KindMinimizeStep, "minimize", action,
			telemetry.I("round", int64(step.Round)),
			telemetry.I("events", int64(step.Events)),
			telemetry.S("detail", step.Detail),
			telemetry.S("kept", fmt.Sprintf("%t", step.Kept)))
	}
	return accepted
}

func configsOf(cands []candidate) []config.Test {
	cfgs := make([]config.Test, len(cands))
	for i, c := range cands {
		cfgs[i] = c.cfg
	}
	return cfgs
}

// withEvents returns cfg with the given event subset.
func withEvents(cfg config.Test, events []config.Event) config.Test {
	out := cfg
	out.Traffic.Events = append([]config.Event(nil), events...)
	return out
}

// ddminEvents is delta debugging over the injected event list: remove
// ever-finer complements, accepting the first (lowest-index) removal
// that preserves the anomaly, until no single event is removable.
func (m *minimizer) ddminEvents(cfg config.Test) config.Test {
	events := append([]config.Event(nil), cfg.Traffic.Events...)
	gran := 2
	for len(events) > 0 {
		m.round++
		if gran > len(events) {
			gran = len(events)
		}
		var cands []candidate
		bounds := chunkBounds(len(events), gran)
		for ci := 0; ci+1 < len(bounds); ci++ {
			lo, hi := bounds[ci], bounds[ci+1]
			rest := make([]config.Event, 0, len(events)-(hi-lo))
			rest = append(rest, events[:lo]...)
			rest = append(rest, events[hi:]...)
			cands = append(cands, candidate{
				cfg:    withEvents(cfg, rest),
				detail: fmt.Sprintf("remove events %d..%d of %d", lo, hi-1, len(events)),
			})
		}
		i := m.acceptFirst("drop-events", cands)
		switch {
		case i >= 0:
			events = cands[i].cfg.Traffic.Events
			if gran > 2 {
				gran--
			}
		case gran < len(events):
			gran = min(len(events), 2*gran)
		default:
			return withEvents(cfg, events)
		}
	}
	return withEvents(cfg, events)
}

// chunkBounds splits n items into gran contiguous chunks, returning
// gran+1 boundary indices.
func chunkBounds(n, gran int) []int {
	bounds := make([]int, gran+1)
	for i := 0; i <= gran; i++ {
		bounds[i] = i * n / gran
	}
	return bounds
}

// simplifier proposes one canonical field simplification, or ok=false
// when it no longer applies.
type simplifier struct {
	name  string
	apply func(config.Test) (config.Test, string, bool)
}

// simplifiers is the fixed simplification ladder, tried in this order
// each round. Candidates that fail validation (for example shrinking a
// message below an event's packet index) are rejected by their failing
// run, so each pass can propose aggressively.
var simplifiers = []simplifier{
	{"connections", func(c config.Test) (config.Test, string, bool) {
		maxQPN := 1
		for _, ev := range c.Traffic.Events {
			if ev.QPN > maxQPN {
				maxQPN = ev.QPN
			}
		}
		if c.Traffic.NumConnections <= maxQPN {
			return c, "", false
		}
		out := c
		out.Traffic.NumConnections = maxQPN
		if len(out.Traffic.QPTrafficClass) > maxQPN {
			out.Traffic.QPTrafficClass = out.Traffic.QPTrafficClass[:maxQPN]
		}
		return out, fmt.Sprintf("num-connections %d→%d", c.Traffic.NumConnections, maxQPN), true
	}},
	{"messages", func(c config.Test) (config.Test, string, bool) {
		if c.Traffic.NumMsgsPerQP <= 1 {
			return c, "", false
		}
		out := c
		out.Traffic.NumMsgsPerQP = 1
		return out, fmt.Sprintf("num-msgs-per-qp %d→1", c.Traffic.NumMsgsPerQP), true
	}},
	{"message-size", func(c config.Test) (config.Test, string, bool) {
		if c.Traffic.MessageSize <= c.Traffic.MTU {
			return c, "", false
		}
		half := c.Traffic.MessageSize / 2
		if half < c.Traffic.MTU {
			half = c.Traffic.MTU
		}
		out := c
		out.Traffic.MessageSize = half
		return out, fmt.Sprintf("message-size %d→%d", c.Traffic.MessageSize, half), true
	}},
	{"tx-depth", func(c config.Test) (config.Test, string, bool) {
		if c.Traffic.TxDepth <= 1 {
			return c, "", false
		}
		out := c
		out.Traffic.TxDepth = 1
		return out, fmt.Sprintf("tx-depth %d→1", c.Traffic.TxDepth), true
	}},
	{"ets", func(c config.Test) (config.Test, string, bool) {
		if len(c.Requester.ETS) == 0 && len(c.Responder.ETS) == 0 && len(c.Traffic.QPTrafficClass) == 0 {
			return c, "", false
		}
		out := c
		out.Requester.ETS = nil
		out.Responder.ETS = nil
		out.Traffic.QPTrafficClass = nil
		return out, "drop ets-queues + qp-traffic-class", true
	}},
	{"seed", func(c config.Test) (config.Test, string, bool) {
		if c.Seed == 1 {
			return c, "", false
		}
		out := c
		out.Seed = 1
		return out, fmt.Sprintf("seed %d→1", c.Seed), true
	}},
}

// simplifyFields runs simplification rounds until a fixpoint: each
// round proposes every applicable pass against the current base and
// accepts the first that preserves the anomaly. It reports whether any
// round accepted a candidate.
func (m *minimizer) simplifyFields(cfg config.Test) (config.Test, bool) {
	changed := false
	for {
		m.round++
		var cands []candidate
		for _, s := range simplifiers {
			if out, detail, ok := s.apply(cfg); ok {
				cands = append(cands, candidate{cfg: out, detail: detail})
			}
		}
		if len(cands) == 0 {
			return cfg, changed
		}
		i := m.acceptFirst("simplify", cands)
		if i < 0 {
			return cfg, changed
		}
		cfg = cands[i].cfg
		changed = true
	}
}
