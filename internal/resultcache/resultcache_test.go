package resultcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testKey(n int) Key {
	return Key{
		Scenario: fmt.Sprintf("scenario%04d", n),
		Profile:  "cx5",
		Options:  "deadline=600000000000;telemetry=0;lineage=1;int=0;coverage=0",
		Version:  "(devel)",
	}
}

func testArtifacts(n int) map[string][]byte {
	return map[string][]byte{
		"summary.json": []byte(fmt.Sprintf(`{"schema":"lumina-summary/1","n":%d}`+"\n", n)),
		ResultName:     []byte(fmt.Sprintf(`{"schema":%q,"n":%d}`+"\n", ResultSchema, n)),
	}
}

func TestKeyIDDiscriminatesEveryDimension(t *testing.T) {
	base := testKey(1)
	seen := map[string]Key{base.ID(): base}
	for _, k := range []Key{
		{Scenario: "other", Profile: base.Profile, Options: base.Options, Version: base.Version},
		{Scenario: base.Scenario, Profile: "e810", Options: base.Options, Version: base.Version},
		{Scenario: base.Scenario, Profile: base.Profile, Options: "deadline=1", Version: base.Version},
		{Scenario: base.Scenario, Profile: base.Profile, Options: base.Options, Version: "v1.2.3"},
	} {
		id := k.ID()
		if prev, dup := seen[id]; dup {
			t.Fatalf("key %+v collides with %+v on id %s", k, prev, id)
		}
		seen[id] = k
	}
	if base.ID() != testKey(1).ID() {
		t.Fatal("Key.ID is not deterministic")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	arts := testArtifacts(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(k, arts); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok {
		t.Fatal("miss after Put")
	}
	if len(got) != len(arts) {
		t.Fatalf("got %d artifacts, want %d", len(got), len(arts))
	}
	for name, want := range arts {
		if !bytes.Equal(got[name], want) {
			t.Fatalf("artifact %s: got %q want %q", name, got[name], want)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionLRUUnderSmallCap(t *testing.T) {
	// Measure one entry's on-disk footprint, then cap the real cache at
	// two entries (entries are the same size: single-digit payloads).
	probe, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Put(testKey(0), testArtifacts(0)); err != nil {
		t.Fatal(err)
	}
	entryBytes := probe.Stats().Bytes
	cap := 2*entryBytes + entryBytes/2

	c, err := Open(t.TempDir(), cap)
	if err != nil {
		t.Fatal(err)
	}
	// Put 0, 1 (both fit), touch 0 so 1 is least-recently-used, then put
	// 2: the cap forces one eviction and LRU order names entry 1.
	for i := 0; i < 2; i++ {
		if err := c.Put(testKey(i), testArtifacts(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get(testKey(0)); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	if err := c.Put(testKey(2), testArtifacts(2)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte cap: %+v", cap, st)
	}
	if st.Bytes > cap {
		t.Fatalf("cache holds %d bytes, cap %d", st.Bytes, cap)
	}
	if _, ok := c.Get(testKey(0)); !ok {
		t.Fatal("recently-used entry was evicted")
	}
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if _, ok := c.Get(testKey(2)); !ok {
		t.Fatal("just-put entry was evicted")
	}
}

func TestEvictionNeverRemovesJustPutEntry(t *testing.T) {
	// A cap smaller than one entry must still cache that entry.
	c, err := Open(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testKey(1), testArtifacts(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(testKey(1)); !ok {
		t.Fatal("entry evicted immediately after Put under tiny cap")
	}
}

func TestConcurrentPutSameKey(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(7)
	arts := testArtifacts(7)
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = c.Put(k, arts)
			c.Get(k)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	got, ok := c.Get(k)
	if !ok {
		t.Fatal("miss after concurrent puts")
	}
	if !bytes.Equal(got["summary.json"], arts["summary.json"]) {
		t.Fatal("artifact bytes corrupted by concurrent puts")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("concurrent Put of one key produced %d entries", st.Entries)
	}
	if ids := c.IDs(); len(ids) != 1 || ids[0] != k.ID() {
		t.Fatalf("IDs() = %v, want [%s]", ids, k.ID())
	}
}

func TestCorruptedEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	if err := c.Put(k, testArtifacts(1)); err != nil {
		t.Fatal(err)
	}
	// Flip bytes in the cached artifact: digest verification must fail.
	path := filepath.Join(dir, "entries", k.ID(), "summary.json")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("corrupted entry returned as a hit")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("corrupted entry not dropped: %+v", st)
	}
	// The slot is usable again.
	if err := c.Put(k, testArtifacts(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); !ok {
		t.Fatal("miss after repopulating a dropped entry")
	}
}

func TestTruncatedArtifactIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(2)
	if err := c.Put(k, testArtifacts(2)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "entries", k.ID(), ResultName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("truncated entry returned as a hit")
	}
}

func TestMissingArtifactFileIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(3)
	if err := c.Put(k, testArtifacts(3)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "entries", k.ID(), "summary.json")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("entry with a missing artifact returned as a hit")
	}
}

func TestReopenRebuildsFromDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put(testKey(i), testArtifacts(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete the index: reopen must adopt the entry directories.
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Entries != 3 {
		t.Fatalf("reopen adopted %d entries, want 3", st.Entries)
	}
	for i := 0; i < 3; i++ {
		got, ok := c2.Get(testKey(i))
		if !ok {
			t.Fatalf("entry %d missing after reopen", i)
		}
		if want := testArtifacts(i)["summary.json"]; !bytes.Equal(got["summary.json"], want) {
			t.Fatalf("entry %d bytes differ after reopen", i)
		}
	}
	// And entries deleted behind the index's back disappear on reopen.
	if err := os.RemoveAll(filepath.Join(dir, "entries", testKey(0).ID())); err != nil {
		t.Fatal(err)
	}
	c3, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Get(testKey(0)); ok {
		t.Fatal("deleted entry resurrected by reopen")
	}
}

func TestPutRejectsBadArtifactNames(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", entryJSON, "a/b", "../escape"} {
		if err := c.Put(testKey(9), map[string][]byte{name: []byte("x")}); err == nil {
			t.Fatalf("Put accepted artifact name %q", name)
		}
	}
	if err := c.Put(testKey(9), nil); err == nil {
		t.Fatal("Put accepted empty artifact set")
	}
}
