// Package resultcache is Lumina's content-addressed, on-disk result
// store. A run's verdicts and artifacts are a pure function of
// (scenario, NIC profile, run options, code version) — the corpus
// already exploits this by content-addressing scenarios and replaying
// against golden digests — so the tuple itself can key a cache:
// whoever computed a cell first (a corpus replay, a served submission,
// an experiment) stores the artifacts, and every later request for the
// same tuple is a disk read instead of a simulation.
//
// Layout under the cache root:
//
//	entries/<id>/entry.json      the key, plus per-artifact size+sha256
//	entries/<id>/<artifact>      the cached artifact bytes, verbatim
//	index.json                   logical-clock LRU index (sizes, access)
//
// <id> is the truncated SHA-256 of the canonical key rendering
// (Key.ID). Writes are atomic — a staged temp directory renamed into
// place — so a crashed writer leaves either the full entry or nothing.
// Reads verify every artifact against entry.json's recorded size and
// digest; any mismatch (corruption, truncation, a concurrent partial
// delete) demotes the entry to a miss and removes it, never an error:
// a cache that can fail a replay is worse than no cache.
//
// The cache is single-writer-process by design (the serve daemon owns
// its cache directory; CLI runs own theirs): the in-process mutex is
// the only lock, and the LRU index is persisted on Put/eviction, so a
// crash loses at most access recency, never entries.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Schema versions the on-disk layout; bump on incompatible changes.
// It is folded into every key ID, so a layout bump invalidates old
// entries instead of misreading them.
const Schema = "lumina-resultcache/1"

// Key is the four-dimensional identity of one cached result.
type Key struct {
	// Scenario is the canonical scenario content hash
	// (config.ContentHash — the same address corpus entries use).
	Scenario string `json:"scenario"`
	// Profile is the NIC model the scenario was retargeted to, or ""
	// for the scenario's native NICs.
	Profile string `json:"profile"`
	// Options is the orchestrator options fingerprint
	// (orchestrator.Options.Fingerprint).
	Options string `json:"options"`
	// Version is the code build stamp (version.Stamp).
	Version string `json:"version"`
}

// ID is the key's content address: the truncated SHA-256 of its
// canonical rendering. NUL separators keep adjacent dimensions from
// aliasing ("ab"+"c" vs "a"+"bc").
func (k Key) ID() string {
	h := sha256.New()
	for _, s := range []string{Schema, k.Scenario, k.Profile, k.Options, k.Version} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Stats is a point-in-time cache census plus lifetime op counters.
type Stats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
}

// entryMeta is the entry.json document.
type entryMeta struct {
	Schema    string             `json:"schema"`
	Key       Key                `json:"key"`
	Artifacts map[string]artMeta `json:"artifacts"`
}

type artMeta struct {
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// indexEntry is one entry's LRU bookkeeping.
type indexEntry struct {
	Bytes  int64  `json:"bytes"`
	Access uint64 `json:"access"` // logical clock, not wall time
}

type indexFile struct {
	Schema  string                `json:"schema"`
	Seq     uint64                `json:"seq"`
	Entries map[string]indexEntry `json:"entries"`
}

// Cache is an open result cache rooted at a directory.
type Cache struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	seq     uint64
	entries map[string]indexEntry
	tmpSeq  uint64
	stats   Stats
}

const entryJSON = "entry.json"

// Open opens (creating if needed) the cache at dir. maxBytes caps the
// total artifact bytes retained — Put evicts least-recently-used
// entries to stay under it; <= 0 means unlimited. A stale or missing
// index is rebuilt from the entry directories, so the cache survives
// crashes and manual surgery.
func Open(dir string, maxBytes int64) (*Cache, error) {
	if err := os.MkdirAll(filepath.Join(dir, "entries"), 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	c := &Cache{dir: dir, maxBytes: maxBytes, entries: map[string]indexEntry{}}
	c.loadIndex()
	if err := c.reconcile(); err != nil {
		return nil, err
	}
	return c, nil
}

// loadIndex reads index.json if present and well-formed; anything else
// starts from an empty index (reconcile re-adopts the entries).
func (c *Cache) loadIndex() {
	data, err := os.ReadFile(filepath.Join(c.dir, "index.json"))
	if err != nil {
		return
	}
	var f indexFile
	if json.Unmarshal(data, &f) != nil || f.Schema != Schema {
		return
	}
	c.seq = f.Seq
	for id, e := range f.Entries {
		c.entries[id] = e
	}
}

// reconcile makes the index agree with the entry directories: entries
// whose directory vanished are dropped, directories the index does not
// know are adopted (access 0, so they evict first), and stale temp
// staging directories are swept.
func (c *Cache) reconcile() error {
	des, err := os.ReadDir(filepath.Join(c.dir, "entries"))
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	onDisk := map[string]bool{}
	for _, de := range des {
		if !de.IsDir() {
			continue
		}
		id := de.Name()
		onDisk[id] = true
		if _, ok := c.entries[id]; !ok {
			c.entries[id] = indexEntry{Bytes: dirBytes(c.entryDir(id))}
		}
	}
	for id := range c.entries {
		if !onDisk[id] {
			delete(c.entries, id)
		}
	}
	if tmp, err := os.ReadDir(filepath.Join(c.dir, "tmp")); err == nil {
		for _, de := range tmp {
			os.RemoveAll(filepath.Join(c.dir, "tmp", de.Name()))
		}
	}
	for _, e := range c.entries {
		if e.Access >= c.seq {
			c.seq = e.Access + 1
		}
	}
	return nil
}

func dirBytes(dir string) int64 {
	var n int64
	des, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, de := range des {
		if info, err := de.Info(); err == nil && de.Type().IsRegular() {
			n += info.Size()
		}
	}
	return n
}

func (c *Cache) entryDir(id string) string {
	return filepath.Join(c.dir, "entries", id)
}

// Get returns the cached artifacts for k, or (nil, false) on a miss. A
// present-but-unverifiable entry — unreadable or schema-mismatched
// entry.json, a missing artifact, a size or digest mismatch — is
// removed and reported as a miss, never an error.
func (c *Cache) Get(k Key) (map[string][]byte, bool) {
	id := k.ID()
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	arts, err := c.readEntry(id, k)
	if err != nil {
		// Corruption demotes to a miss: drop the entry so the caller's
		// fresh run can repopulate it.
		c.dropLocked(id, e)
		c.stats.Misses++
		return nil, false
	}
	c.seq++
	e.Access = c.seq
	c.entries[id] = e
	c.stats.Hits++
	return arts, true
}

// readEntry loads and verifies one entry.
func (c *Cache) readEntry(id string, k Key) (map[string][]byte, error) {
	dir := c.entryDir(id)
	data, err := os.ReadFile(filepath.Join(dir, entryJSON))
	if err != nil {
		return nil, err
	}
	var meta entryMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, err
	}
	if meta.Schema != Schema {
		return nil, fmt.Errorf("resultcache: entry %s: schema %q", id, meta.Schema)
	}
	if meta.Key != k {
		return nil, fmt.Errorf("resultcache: entry %s: key mismatch", id)
	}
	arts := make(map[string][]byte, len(meta.Artifacts))
	for name, am := range meta.Artifacts {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if int64(len(b)) != am.Bytes {
			return nil, fmt.Errorf("resultcache: entry %s: %s truncated (%d of %d bytes)", id, name, len(b), am.Bytes)
		}
		sum := sha256.Sum256(b)
		if hex.EncodeToString(sum[:]) != am.SHA256 {
			return nil, fmt.Errorf("resultcache: entry %s: %s digest mismatch", id, name)
		}
		arts[name] = b
	}
	return arts, nil
}

// Put stores artifacts under k. The entry is staged in a temp directory
// and renamed into place atomically; if the key is already present
// (including a concurrent Put of the same key — results are pure, so
// both writers hold identical bytes) the existing entry wins and the
// staged copy is discarded. Artifact names must be plain file names.
func (c *Cache) Put(k Key, artifacts map[string][]byte) error {
	if len(artifacts) == 0 {
		return fmt.Errorf("resultcache: Put with no artifacts")
	}
	meta := entryMeta{Schema: Schema, Key: k, Artifacts: map[string]artMeta{}}
	var total int64
	for name, b := range artifacts {
		if name == "" || name == entryJSON || filepath.Base(name) != name {
			return fmt.Errorf("resultcache: invalid artifact name %q", name)
		}
		sum := sha256.Sum256(b)
		meta.Artifacts[name] = artMeta{Bytes: int64(len(b)), SHA256: hex.EncodeToString(sum[:])}
		total += int64(len(b))
	}
	metaJS, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return err
	}
	metaJS = append(metaJS, '\n')
	total += int64(len(metaJS))

	id := k.ID()
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok {
		// First writer wins; refresh recency so the duplicate Put still
		// counts as use.
		c.seq++
		e.Access = c.seq
		c.entries[id] = e
		return nil
	}

	c.tmpSeq++
	stage := filepath.Join(c.dir, "tmp", fmt.Sprintf("%d-%d-%s", os.Getpid(), c.tmpSeq, id))
	if err := os.MkdirAll(stage, 0o755); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			os.RemoveAll(stage)
		}
	}()
	for name, b := range artifacts {
		if err := os.WriteFile(filepath.Join(stage, name), b, 0o644); err != nil {
			return fmt.Errorf("resultcache: %w", err)
		}
	}
	if err := os.WriteFile(filepath.Join(stage, entryJSON), metaJS, 0o644); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(stage, c.entryDir(id)); err != nil {
		// Another process renamed the same entry first: its bytes are
		// identical by purity, so adopt it and discard ours.
		if _, statErr := os.Stat(filepath.Join(c.entryDir(id), entryJSON)); statErr != nil {
			return fmt.Errorf("resultcache: %w", err)
		}
	}
	ok = true
	c.seq++
	c.entries[id] = indexEntry{Bytes: total, Access: c.seq}
	c.stats.Puts++
	c.evictLocked(id)
	return c.writeIndexLocked()
}

// evictLocked removes least-recently-used entries until total bytes fit
// under the cap; the entry named keep (the one just put) is never
// evicted, so a cap smaller than a single entry still caches one.
func (c *Cache) evictLocked(keep string) {
	if c.maxBytes <= 0 {
		return
	}
	for c.totalLocked() > c.maxBytes && len(c.entries) > 1 {
		victim, best := "", uint64(0)
		for id, e := range c.entries {
			if id == keep {
				continue
			}
			if victim == "" || e.Access < best {
				victim, best = id, e.Access
			}
		}
		if victim == "" {
			return
		}
		c.dropLocked(victim, c.entries[victim])
		c.stats.Evictions++
	}
}

func (c *Cache) totalLocked() int64 {
	var n int64
	for _, e := range c.entries {
		n += e.Bytes
	}
	return n
}

func (c *Cache) dropLocked(id string, _ indexEntry) {
	os.RemoveAll(c.entryDir(id))
	delete(c.entries, id)
}

// writeIndexLocked persists the LRU index atomically.
func (c *Cache) writeIndexLocked() error {
	f := indexFile{Schema: Schema, Seq: c.seq, Entries: c.entries}
	js, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	js = append(js, '\n')
	c.tmpSeq++
	tmp := filepath.Join(c.dir, fmt.Sprintf(".index-%d-%d.tmp", os.Getpid(), c.tmpSeq))
	if err := os.WriteFile(tmp, js, 0o644); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, "index.json")); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resultcache: %w", err)
	}
	return nil
}

// Stats returns the current census and lifetime counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.totalLocked()
	s.MaxBytes = c.maxBytes
	return s
}

// IDs returns the cached entry IDs, sorted (tests and debugging).
func (c *Cache) IDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.entries))
	for id := range c.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
