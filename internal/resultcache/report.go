package resultcache

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/lumina-sim/lumina/internal/config"
	"github.com/lumina-sim/lumina/internal/orchestrator"
	"github.com/lumina-sim/lumina/internal/sim"
	"github.com/lumina-sim/lumina/internal/telemetry"
	"github.com/lumina-sim/lumina/internal/version"
)

// ResultSchema versions the result.json sidecar.
const ResultSchema = "lumina-resultcache-result/1"

// ResultName is the sidecar's artifact name.
const ResultName = "result.json"

// Result is the judged form of a cached run — everything a consumer
// needs to score the run (corpus golden comparison, serve status
// responses) without re-parsing the heavyweight artifacts.
type Result struct {
	Schema string `json:"schema"`
	// Verdicts maps analyzer name → pass.
	Verdicts map[string]bool `json:"verdicts"`
	TimedOut bool            `json:"timed_out"`
	// SummarySHA256 is the canonical (code_version-cleared) summary
	// digest — the same quantity corpus goldens record.
	SummarySHA256 string   `json:"summary_sha256"`
	DurationNs    sim.Time `json:"duration_ns"`
	IntegrityOK   bool     `json:"integrity_ok"`
}

// ScenarioKey computes the scenario dimension of a cache key: the
// canonical scenario content hash. One definition serves corpus entry
// IDs, cache keys and served run IDs (config.ContentHash).
func ScenarioKey(cfg config.Test) (string, error) {
	return config.ContentHash(cfg)
}

// KeyFor assembles the full cache key for running cfg (content-hashed
// before any profile retargeting) under profile and opts with the
// current build.
func KeyFor(cfg config.Test, profile string, opts orchestrator.Options) (Key, error) {
	scenario, err := ScenarioKey(cfg)
	if err != nil {
		return Key{}, err
	}
	return Key{
		Scenario: scenario,
		Profile:  profile,
		Options:  opts.Fingerprint(),
		Version:  version.Stamp(),
	}, nil
}

// Render converts a finished report into the cacheable artifact set:
// result.json always; summary.json when lineage ran; metrics.json and
// timeline.json when telemetry ran; int.json and coverage.json when
// those options ran; report.json always. Every artifact is rendered by
// the same writers WriteArtifacts uses, so a cache hit can return bytes
// identical to a fresh run's artifact files.
func Render(rep *orchestrator.Report) (map[string][]byte, error) {
	digest, err := rep.SummaryDigest()
	if err != nil {
		return nil, err
	}
	res := Result{
		Schema:        ResultSchema,
		Verdicts:      map[string]bool{},
		TimedOut:      rep.TimedOut,
		SummarySHA256: digest,
		DurationNs:    rep.DurationNs,
		IntegrityOK:   rep.IntegrityOK,
	}
	for _, v := range rep.Verdicts {
		res.Verdicts[v.Analyzer] = v.Pass
	}
	resJS, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return nil, err
	}
	arts := map[string][]byte{ResultName: append(resJS, '\n')}

	repJS, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	arts["report.json"] = repJS

	render := func(name string, fn func(w *bytes.Buffer) error) error {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			return fmt.Errorf("resultcache: rendering %s: %w", name, err)
		}
		arts[name] = buf.Bytes()
		return nil
	}
	if rep.Lineage != nil {
		if err := render("summary.json", func(w *bytes.Buffer) error { return rep.WriteSummary(w) }); err != nil {
			return nil, err
		}
	}
	if rep.Metrics != nil {
		js, err := json.MarshalIndent(rep.Metrics, "", "  ")
		if err != nil {
			return nil, err
		}
		arts["metrics.json"] = append(js, '\n')
	}
	if rep.Events != nil {
		if err := render("timeline.json", func(w *bytes.Buffer) error { return telemetry.WriteTimeline(w, rep.Events) }); err != nil {
			return nil, err
		}
	}
	if rep.INT != nil {
		if err := render("int.json", func(w *bytes.Buffer) error { return rep.WriteINT(w) }); err != nil {
			return nil, err
		}
	}
	if rep.Coverage != nil {
		if err := render("coverage.json", func(w *bytes.Buffer) error { return rep.WriteCoverage(w) }); err != nil {
			return nil, err
		}
	}
	return arts, nil
}

// ParseResult decodes a cached result.json sidecar.
func ParseResult(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("resultcache: result.json: %w", err)
	}
	if r.Schema != ResultSchema {
		return nil, fmt.Errorf("resultcache: result.json schema %q (want %q)", r.Schema, ResultSchema)
	}
	return &r, nil
}
