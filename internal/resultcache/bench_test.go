package resultcache

import (
	"testing"

	"github.com/lumina-sim/lumina/internal/config"
	"github.com/lumina-sim/lumina/internal/orchestrator"
)

// BenchmarkCacheLookup measures the cache-hit path — the cost a warm
// replay or a served resubmission pays instead of a simulation: one
// Get verifying and returning a real run's artifact set (entry.json
// parse + per-artifact read + size/digest check). The perfgate budget
// cache_lookup bounds its allocation profile.
func BenchmarkCacheLookup(b *testing.B) {
	cfg := config.Default()
	cfg.Traffic.NumMsgsPerQP = 5
	opts := orchestrator.DefaultOptions()
	opts.Lineage = true
	rep, err := orchestrator.Run(cfg, opts)
	if err != nil {
		b.Fatal(err)
	}
	arts, err := Render(rep)
	if err != nil {
		b.Fatal(err)
	}
	c, err := Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	key, err := KeyFor(cfg, "", opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Put(key, arts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(key); !ok {
			b.Fatal("cache miss on warm key")
		}
	}
}
